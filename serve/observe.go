package serve

// Observability of the service: the per-service metrics registry, the
// HTTP middleware that feeds the request counters and the structured
// request log, and the GET /v1/metrics scrape handler.
//
// The series split in two registries. Everything the service itself
// owns — queue depth, executor utilization, cache hit/miss/coalesce
// counts, per-kind job latency — lives in a per-Service registry, so
// two services in one process (tests, embedded daemons) never collide.
// Cross-cutting series owned by the process (dispatch.Pool's failover
// counters) live in metrics.Process(), which every scrape appends, so
// a dispatcher embedding a Service exposes its dispatch counters on
// the same endpoint.

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"faultroute/api"
	"faultroute/internal/cache"
	"faultroute/internal/metrics"
)

// serviceMetrics holds the instrument handles of one Service.
type serviceMetrics struct {
	reg *metrics.Registry

	submitted *metrics.CounterVec   // outcome: fresh|coalesced|cached|invalid|rejected
	executed  *metrics.CounterVec   // kind, state: executed jobs by terminal state
	duration  *metrics.HistogramVec // kind: execution latency histogram
	httpReqs  *metrics.CounterVec   // route, code
	sseActive *metrics.Gauge        // live event-stream subscriber count
}

// newServiceMetrics registers the service's series against its live
// engine and store state.
func newServiceMetrics(s *Service) *serviceMetrics {
	reg := metrics.NewRegistry()
	m := &serviceMetrics{
		reg: reg,
		submitted: reg.CounterVec("faultroute_jobs_submitted_total",
			"Job submissions by outcome: fresh (enqueued), coalesced (attached to an in-flight job), cached (already computed), invalid (400), rejected (queue full or closing, 503).",
			"outcome"),
		executed: reg.CounterVec("faultroute_jobs_executed_total",
			"Executed jobs by kind and terminal state (jobs canceled while still queued never execute and are not counted).",
			"kind", "state"),
		duration: reg.HistogramVec("faultroute_job_duration_seconds",
			"Execution latency of jobs by kind, queue wait excluded.",
			nil, "kind"),
		httpReqs: reg.CounterVec("faultroute_http_requests_total",
			"API requests by route pattern and status code.",
			"route", "code"),
		sseActive: reg.Gauge("faultroute_sse_streams_active",
			"Server-Sent-Events progress streams currently open."),
	}
	reg.GaugeFunc("faultroute_jobs_queue_depth",
		"Jobs waiting in the submission queue.",
		func() float64 { return float64(s.engine.QueueLen()) })
	reg.GaugeFunc("faultroute_jobs_queue_capacity",
		"Submission queue capacity; submissions beyond it get 503.",
		func() float64 { return float64(s.engine.QueueCap()) })
	reg.GaugeFunc("faultroute_jobs_executors",
		"Size of the job executor pool.",
		func() float64 { return float64(s.engine.Executors()) })
	reg.GaugeFunc("faultroute_jobs_executors_busy",
		"Executors currently running a job; busy/executors is the pool utilization.",
		func() float64 { return float64(s.engine.Busy()) })
	reg.CounterFunc("faultroute_cache_hits_total",
		"Result-cache lookups that found the stored bytes.",
		func() float64 { hits, _ := s.store.Stats(); return float64(hits) })
	reg.CounterFunc("faultroute_cache_misses_total",
		"Result-cache lookups that found nothing.",
		func() float64 { _, misses := s.store.Stats(); return float64(misses) })
	reg.CounterFunc("faultroute_jobs_coalesced_total",
		"Submissions that coalesced onto an in-flight or completed job instead of enqueueing work.",
		func() float64 {
			return float64(m.submitted.With("coalesced").Value() + m.submitted.With("cached").Value())
		})
	reg.GaugeFunc("faultroute_cache_results",
		"Results currently stored in the content-addressed cache.",
		func() float64 { return float64(s.store.Len()) })
	// Per-tier series. The tier set is fixed at store construction, so
	// registering one sampled child per tier is static wiring; each
	// sample re-reads the live tier statistics at scrape time.
	tierEntries := reg.GaugeFuncVec("faultroute_cache_tier_entries",
		"Results resident per store tier.", "tier")
	tierBytes := reg.GaugeFuncVec("faultroute_cache_tier_bytes",
		"Resident payload bytes per store tier; the memory tier's LRU keeps this at or below -cache-max-bytes.", "tier")
	tierHits := reg.CounterFuncVec("faultroute_cache_tier_hits_total",
		"Lookups answered by each tier (a disk hit after a memory miss counts in both tiers' series).", "tier")
	tierMisses := reg.CounterFuncVec("faultroute_cache_tier_misses_total",
		"Lookups each tier could not answer.", "tier")
	tierEvictions := reg.CounterFuncVec("faultroute_cache_tier_evictions_total",
		"Entries removed per tier: LRU eviction (memory), byte-budget GC and quarantined corrupt files (disk).", "tier")
	for _, t := range s.store.Tiers() {
		tier := t.Tier
		tierEntries.With(tierStat(s.store, tier, func(t cache.TierStats) float64 { return float64(t.Entries) }), tier)
		tierBytes.With(tierStat(s.store, tier, func(t cache.TierStats) float64 { return float64(t.Bytes) }), tier)
		tierHits.With(tierStat(s.store, tier, func(t cache.TierStats) float64 { return float64(t.Hits) }), tier)
		tierMisses.With(tierStat(s.store, tier, func(t cache.TierStats) float64 { return float64(t.Misses) }), tier)
		tierEvictions.With(tierStat(s.store, tier, func(t cache.TierStats) float64 { return float64(t.Evictions) }), tier)
	}
	return m
}

// tierStat returns a sampler reading one field of one tier's live
// statistics.
func tierStat(store cache.ResultStore, tier string, field func(cache.TierStats) float64) func() float64 {
	return func() float64 {
		for _, t := range store.Tiers() {
			if t.Tier == tier {
				return field(t)
			}
		}
		return 0
	}
}

// observeJob records one executed job's latency and terminal state,
// classifying the error exactly like the engine does.
func (m *serviceMetrics) observeJob(kind string, start time.Time, err error) {
	m.duration.With(kind).Observe(time.Since(start).Seconds())
	state := api.JobDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		state = api.JobCanceled
	default:
		state = api.JobFailed
	}
	m.executed.With(kind, string(state)).Inc()
}

// handleMetrics serves the Prometheus text exposition: the service's
// own registry followed by the process-wide one.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	s.metrics.reg.WriteText(&buf)
	metrics.Process().WriteText(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// requestInfo is the per-request annotation slot: handlers that resolve
// a job record its identity here so the access log can carry it.
type requestInfo struct {
	jobID string
	key   string
}

type requestInfoKey struct{}

// annotate records the job a handler resolved for the current request.
func annotate(r *http.Request, jobID, key string) {
	if info, ok := r.Context().Value(requestInfoKey{}).(*requestInfo); ok {
		info.jobID, info.key = jobID, key
	}
}

// statusWriter captures the response status and size without hiding
// the underlying writer's optional interfaces: Unwrap lets
// http.ResponseController reach Flush for the SSE stream.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code, w.wrote = code, true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps the API mux: every request gets an annotation slot,
// a faultroute_http_requests_total sample keyed by route pattern and
// status, and — when the service has a logger — one structured log
// line (method, path, route, status, duration, response size, and the
// job id/key when the handler resolved one).
func (s *Service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		info := &requestInfo{}
		r = r.WithContext(context.WithValue(r.Context(), requestInfoKey{}, info))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		route := r.Pattern
		if route == "" {
			route = "unmatched" // bounded label cardinality for 404 noise
		}
		s.metrics.httpReqs.With(route, strconv.Itoa(sw.code)).Inc()
		if s.logger != nil {
			attrs := []slog.Attr{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.code),
				slog.Duration("duration", time.Since(start)),
				slog.Int64("bytes", sw.bytes),
			}
			if info.jobID != "" {
				attrs = append(attrs, slog.String("job", info.jobID))
			}
			if info.key != "" {
				attrs = append(attrs, slog.String("key", info.key))
			}
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		}
	})
}
