// Package serve is the embeddable faultrouted service: the job engine,
// the content-addressed result cache and the experiment registry wired
// into the JSON HTTP API documented in SERVING.md.
//
// cmd/faultrouted is a thin flag wrapper around this package; tests and
// programs can mount the same service in-process:
//
//	svc := serve.New(serve.Options{Executors: 2})
//	defer svc.Close()
//	srv := httptest.NewServer(svc.Handler())
//
// Every handler speaks the faultroute/api wire types, so the JSON the
// service caches and serves is byte-identical to what faultroute.Local
// computes in-process and what `routebench -format json` prints.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"faultroute/api"
	"faultroute/internal/cache"
	"faultroute/internal/exp"
	"faultroute/internal/jobs"
)

// Options configures a Service. The zero value selects the daemon
// defaults.
type Options struct {
	// Workers is the default per-job trial parallelism used when a
	// submission does not set its own (<= 0 selects all cores). It never
	// affects result bytes.
	Workers int
	// Executors is the number of jobs executed concurrently (<= 0
	// selects 2).
	Executors int
	// QueueDepth bounds the submission queue; submissions beyond it get
	// 503 (<= 0 selects 64).
	QueueDepth int
	// Store, when non-nil, selects the service's result store — any
	// tier stack from internal/cache: a bounded cache.NewBounded
	// memory tier, a cache.NewTiered memory+disk stack whose disk tier
	// survives restarts, or a pre-warmed store shared with other
	// services. nil selects an unbounded in-memory store. A warm store
	// short-circuits resubmissions across restarts: the engine serves
	// the recovered bytes as cache hits without recomputing.
	Store cache.ResultStore
	// Logger, when non-nil, receives one structured line per API
	// request: method, path, route pattern, status, duration, response
	// size, and the job id/key when the handler resolved one. nil
	// disables request logging (cmd/faultrouted's -log flag sets it).
	Logger *slog.Logger
	// EventInterval is the cadence at which GET /v1/jobs/{id}/events
	// snapshots a running job's progress (<= 0 selects 25ms); terminal
	// transitions are pushed immediately regardless. It never affects
	// result bytes — only how often subscribers hear about progress.
	EventInterval time.Duration
	// TaskDelay, when positive, sleeps every freshly executed task for
	// the given duration before it starts computing (canceled jobs stop
	// sleeping immediately; cache and memo hits never sleep). It exists
	// to emulate a slow or overloaded backend in benchmarks and cluster
	// smoke tests — by the determinism contract a delay can only change
	// timing, never result bytes. cmd/faultrouted wires it to the
	// FAULTROUTE_TASK_DELAY environment variable.
	TaskDelay time.Duration
}

// retryAfterSeconds is the Retry-After hint on queue-full 503s. One
// second is deliberately coarse: the queue drains at job-execution
// granularity, and a finer hint would just synchronize rejected clients
// into retry waves (the client adds its own jitter on top).
const retryAfterSeconds = 1

// Service owns one engine + store pair and serves the HTTP API.
type Service struct {
	engine        *jobs.Engine
	store         cache.ResultStore
	workers       int
	logger        *slog.Logger
	eventInterval time.Duration
	taskDelay     time.Duration
	metrics       *serviceMetrics
	memo          *submitMemo
}

// New starts a service. Close it when done to drain the executors.
func New(opts Options) *Service {
	if opts.Executors <= 0 {
		opts.Executors = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.EventInterval <= 0 {
		opts.EventInterval = 25 * time.Millisecond
	}
	store := opts.Store
	if store == nil {
		store = cache.NewStore()
	}
	s := &Service{
		engine:        jobs.NewEngine(store, opts.Executors, opts.QueueDepth),
		store:         store,
		workers:       opts.Workers,
		logger:        opts.Logger,
		eventInterval: opts.EventInterval,
		taskDelay:     opts.TaskDelay,
		memo:          newSubmitMemo(),
	}
	s.metrics = newServiceMetrics(s)
	return s
}

// Close stops accepting submissions, cancels running jobs and waits for
// the executors to drain.
func (s *Service) Close() { s.engine.Close() }

// Store returns the service's result store (shared, live).
func (s *Service) Store() cache.ResultStore { return s.store }

// Handler returns the API surface:
//
//	POST   /v1/jobs             submit an estimate, experiment or percolation job
//	                            (estimate jobs may carry a shard: a trial-range
//	                            sub-job of a distributed dispatch, see SERVING.md)
//	GET    /v1/jobs/{id}        job state + progress counters
//	GET    /v1/jobs/{id}/events Server-Sent-Events push progress stream
//	DELETE /v1/jobs/{id}        cancel a queued or running job (409 once finished)
//	GET    /v1/results/{key}    canonical result bytes for a content address
//	GET    /v1/experiments      the E1..E21 registry with parameter schemas
//	GET    /v1/healthz          liveness + cache statistics
//	GET    /v1/metrics          Prometheus text-format metrics
//
// Every request passes through the observability middleware: a
// faultroute_http_requests_total sample per request, plus one
// structured log line when Options.Logger is set.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.BasePath+"/jobs", s.handleSubmit)
	mux.HandleFunc("GET "+api.BasePath+"/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET "+api.BasePath+"/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE "+api.BasePath+"/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET "+api.BasePath+"/results/{key}", s.handleResult)
	mux.HandleFunc("GET "+api.BasePath+"/experiments", s.handleExperiments)
	mux.HandleFunc("GET "+api.BasePath+"/healthz", s.handleHealth)
	mux.HandleFunc("GET "+api.BasePath+"/metrics", s.handleMetrics)
	return s.instrument(mux)
}

// writeJSON writes v with the given status; encoding failures turn into
// a 500 before any body byte is written.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b, status = []byte(`{"error":"encoding response"}`), http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// writeError reports a failure as an api.ErrorBody.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, api.ErrorBody{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit compiles the submitted request (normalization + content
// address + task) and either coalesces onto existing work or enqueues a
// fresh job. The compiled task is wrapped so every executed job feeds
// the per-kind latency histogram and terminal-state counters.
//
// Duplicate submissions — byte-identical bodies, the shape of a
// popularity-skewed fleet — take the memo fast path: the first
// submission's compile outcome is reused, and once the job is done the
// pre-encoded response is served without decoding the body or taking
// the engine lock at all. See memo.go.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.metrics.submitted.With("invalid").Inc()
		writeError(w, http.StatusBadRequest, "reading job request: %v", err)
		return
	}
	ent := s.memo.get(body)
	if ent == nil {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		var req api.Request
		if err := dec.Decode(&req); err != nil {
			s.metrics.submitted.With("invalid").Inc()
			writeError(w, http.StatusBadRequest, "decoding job request: %v", err)
			return
		}
		if req.Workers <= 0 {
			req.Workers = s.workers
		}
		plan, err := api.Compile(req)
		if err != nil {
			s.metrics.submitted.With("invalid").Inc()
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		ent = &memoEntry{key: plan.Key, total: plan.Total, kind: plan.Request.Kind, task: plan.Task}
		s.memo.put(body, ent)
	} else if frozen := ent.resp.Load(); frozen != nil && s.store.Has(ent.key) {
		// The presence probe keeps the frozen fast path honest under a
		// bounded store: once the result's bytes are evicted, the
		// submission must fall through and recompute rather than point
		// the client at a /v1/results fetch that would 404.
		s.metrics.submitted.With("cached").Inc()
		annotate(r, frozen.jobID, ent.key)
		w.Header().Set("Content-Type", "application/json")
		w.Write(frozen.body)
		return
	}
	kind, task := ent.kind, ent.task
	instrumented := func(ctx context.Context, progress func(int)) ([]byte, error) {
		start := time.Now()
		if s.taskDelay > 0 {
			// Emulated slowness (Options.TaskDelay). The select keeps
			// canceled jobs honest: a hedge loser or DELETEd job stops
			// sleeping the moment its context dies.
			select {
			case <-ctx.Done():
				s.metrics.observeJob(kind, start, ctx.Err())
				return nil, ctx.Err()
			case <-time.After(s.taskDelay):
			}
		}
		data, err := task(ctx, progress)
		s.metrics.observeJob(kind, start, err)
		return data, err
	}
	job, fresh, err := s.engine.Submit(ent.key, ent.total, instrumented)
	switch {
	case errors.Is(err, jobs.ErrQueueFull), errors.Is(err, jobs.ErrClosed):
		s.metrics.submitted.With("rejected").Inc()
		// Backpressure, not failure: tell well-behaved clients when to
		// come back instead of letting their exponential backoff guess.
		// client.Client honors the header (capped by its backoff ceiling).
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	annotate(r, job.ID(), job.Key())
	st := job.Status()
	resp := api.SubmitResponse{
		Job:       st,
		Cached:    !fresh && st.State == jobs.StateDone,
		Coalesced: !fresh && st.State != jobs.StateDone,
		Events:    api.BasePath + "/jobs/" + job.ID() + "/events",
	}
	switch {
	case fresh:
		s.metrics.submitted.With("fresh").Inc()
	case resp.Cached:
		s.metrics.submitted.With("cached").Inc()
	default:
		s.metrics.submitted.With("coalesced").Inc()
	}
	status := http.StatusOK
	if fresh {
		status = http.StatusAccepted
	}
	if resp.Cached {
		// The job is terminal and its status frozen: encode once, freeze
		// the bytes on the memo entry, and serve every later duplicate
		// from them.
		if b, err := json.Marshal(resp); err == nil {
			b = append(b, '\n')
			ent.resp.Store(&memoResp{body: b, jobID: job.ID()})
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			w.Write(b)
			return
		}
	}
	writeJSON(w, status, resp)
}

// handleJobStatus reports one job's state and progress counters.
func (s *Service) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.engine.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	annotate(r, job.ID(), job.Key())
	writeJSON(w, http.StatusOK, job.Status())
}

// handleJobCancel cancels a queued or running job. A job already in a
// terminal state gets 409: the DELETE changed nothing, and pretending
// otherwise would hide from clients that the result (or failure) stands.
func (s *Service) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch err := s.engine.Cancel(id); {
	case errors.Is(err, jobs.ErrFinished):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	job, _ := s.engine.Get(id)
	annotate(r, job.ID(), job.Key())
	writeJSON(w, http.StatusOK, job.Status())
}

// handleResult serves the cached result bytes for a content address —
// exactly the canonical encoding the job computed, so the body can be
// byte-compared against local CLI output.
func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	annotate(r, "", key)
	data, ok := s.store.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no result for key %q (job still running, failed, or never submitted)", key)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleExperiments serves the machine-readable E1..E21 registry.
func (s *Service) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.ExperimentList{Experiments: exp.Infos()})
}

// handleHealth reports liveness plus cache occupancy, with per-tier
// entry/byte/eviction statistics for tiered stores.
func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.store.Stats()
	tiers := s.store.Tiers()
	th := make([]api.TierHealth, len(tiers))
	for i, t := range tiers {
		th[i] = api.TierHealth{
			Tier:      t.Tier,
			Entries:   t.Entries,
			Bytes:     t.Bytes,
			Hits:      t.Hits,
			Misses:    t.Misses,
			Evictions: t.Evictions,
		}
	}
	writeJSON(w, http.StatusOK, api.Health{
		OK:      true,
		Results: s.store.Len(),
		Hits:    hits,
		Misses:  misses,
		Tiers:   th,
	})
}
