package serve

// The submit memo is the hot-path complement to the engine's
// coalescing: at saturation (the millions-of-users regime) nearly
// every POST /v1/jobs is a duplicate of one of a few popular specs,
// and profiling shows the handler then spends its time not computing —
// the engine absorbs that — but reflectively JSON-decoding the same
// request body and re-marshaling the same cache-hit response, over and
// over. Duplicate submissions are byte-identical on the wire (clients
// marshal the same spec the same way), so the raw body is a perfect
// memo key: a hit skips decode + normalization + content addressing
// entirely, and serves the frozen, pre-encoded response of the done
// job. Distinct-body submissions that normalize to the same spec miss
// the memo and pay the full decode — correctness never depends on a
// memo hit, only the per-request CPU does.

import (
	"sync"
	"sync/atomic"

	"faultroute/api"
)

// memoMaxBody bounds the body size admitted to the memo: every spec in
// the API fits well under this, and refusing outliers keeps the memo's
// worst-case footprint at memoMaxEntries * memoMaxBody.
const memoMaxBody = 4 << 10

// memoMaxEntries bounds the entry count. At capacity an arbitrary
// entry is evicted: the popular-spec entries a Zipf workload cares
// about are re-memoized on the very next duplicate, so approximate
// eviction costs one slow-path request, not correctness.
const memoMaxEntries = 8192

// memoEntry is the compile outcome for one exact request body. The
// task closure is a pure function of the normalized spec, so reusing
// it across submissions is safe — the engine only runs it when the
// submission is fresh.
type memoEntry struct {
	key   string
	total int64
	kind  string
	task  api.Task
	// resp is the frozen cache-hit fast path, set once the job is done:
	// a done job's status is immutable, so every later duplicate of
	// this body gets exactly these bytes — without touching the
	// decoder or the engine's lock. The handler guards the fast path
	// with a store presence probe: under a bounded store the result
	// bytes can be evicted after the freeze, and the duplicate must
	// then recompute instead of being pointed at a 404.
	resp atomic.Pointer[memoResp]
}

// memoResp is the pre-encoded cache-hit response plus the identifiers
// the request log wants.
type memoResp struct {
	body  []byte // encoded SubmitResponse, trailing newline included
	jobID string
}

// submitMemo is a bounded concurrent map from raw body bytes to their
// compile outcome.
type submitMemo struct {
	mu sync.RWMutex
	m  map[string]*memoEntry
}

func newSubmitMemo() *submitMemo {
	return &submitMemo{m: make(map[string]*memoEntry)}
}

func (sm *submitMemo) get(body []byte) *memoEntry {
	if len(body) > memoMaxBody {
		return nil
	}
	sm.mu.RLock()
	e := sm.m[string(body)] // no allocation: the compiler elides the copy for map lookups
	sm.mu.RUnlock()
	return e
}

func (sm *submitMemo) put(body []byte, e *memoEntry) {
	if len(body) > memoMaxBody {
		return
	}
	sm.mu.Lock()
	if len(sm.m) >= memoMaxEntries {
		for k := range sm.m {
			delete(sm.m, k)
			break
		}
	}
	sm.m[string(body)] = e
	sm.mu.Unlock()
}
