package serve_test

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"faultroute/api"
	"faultroute/serve"
)

// ExampleService embeds the faultrouted HTTP service in a program: New
// wires the job engine and result cache, Handler mounts the full JSON
// API on any server. cmd/faultrouted is exactly this plus flags.
func ExampleService() {
	svc := serve.New(serve.Options{Executors: 1, Workers: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Submit a job the way any HTTP client would.
	resp, err := http.Post(srv.URL+api.BasePath+"/jobs", "application/json",
		strings.NewReader(`{"kind":"estimate","estimate":{
			"graph":{"family":"hypercube","n":8},"p":0.6,"trials":20}}`))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var sub api.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		log.Fatal(err)
	}
	// (The job may already be running — or done — by the time the
	// submit response is snapshotted, so print only the stable fields.)
	fmt.Printf("accepted=%v total=%d\n",
		resp.StatusCode == http.StatusAccepted, sub.Job.Total)

	// Liveness + cache statistics.
	health, err := http.Get(srv.URL + api.BasePath + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	defer health.Body.Close()
	var h api.Health
	if err := json.NewDecoder(health.Body).Decode(&h); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ok=%v\n", h.OK)
	// Output:
	// accepted=true total=20
	// ok=true
}
