package dispatch_test

// Cross-backend byte identity for the failure-model axis and the
// kleinberg family (PR 10): the new experiments and FailSpec estimates
// must produce the exact bytes of the in-process run when dispatched —
// sharded, hedged, or both. The mask seed is split from the sample
// seed, never from worker or shard indices, so this is a structural
// guarantee, not a scheduling accident; these tests are the pins.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"faultroute"
	"faultroute/api"
	"faultroute/dispatch"
)

func TestPoolFailureExperimentsByteIdenticalToLocal(t *testing.T) {
	// E19/E20 draw correlated outages per trial, E21 routes on freshly
	// built kleinberg graphs: all three through a hedged 2-backend pool
	// must match faultroute.Local byte for byte.
	b1, b2 := newBackend(t, nil), newBackend(t, nil)
	pool := newPool(t, []string{b1.srv.URL, b2.srv.URL},
		dispatch.WithHedging(true), dispatch.WithHedgeAfter(time.Millisecond))
	local := faultroute.NewLocal()
	ctx := context.Background()
	for _, id := range []string{"E19", "E20", "E21"} {
		req := api.Request{
			Kind:       api.KindExperiment,
			Experiment: &api.ExperimentSpec{ID: id, Seed: 1, Scale: "quick"},
		}
		want, err := local.Do(ctx, req)
		if err != nil {
			t.Fatalf("%s local: %v", id, err)
		}
		got, err := pool.Do(ctx, req)
		if err != nil {
			t.Fatalf("%s pool: %v", id, err)
		}
		if got.Key != want.Key {
			t.Fatalf("%s: pool key %s != local key %s", id, got.Key, want.Key)
		}
		if !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("%s: pool bytes differ from local:\n got %s\nwant %s", id, got.Body, want.Body)
		}
	}
}

func TestPoolShardedFailureEstimateByteIdenticalToLocal(t *testing.T) {
	// A regional-outage estimate split into shards across two backends:
	// every shard must draw the SAME per-trial outage masks the
	// in-process run draws, so the merged counts are byte-identical.
	b1, b2 := newBackend(t, nil), newBackend(t, nil)
	pool := newPool(t, []string{b1.srv.URL, b2.srv.URL}, dispatch.WithShardTrials(4))
	ctx := context.Background()

	for _, fail := range []*api.FailSpec{
		{Model: "region", Radius: 1, Count: 1, Seed: 4},
		{Model: "nodes", Count: 5, Seed: 4},
		{Model: "iid", Rate: 0.05, Seed: 4},
	} {
		req := api.Request{
			Kind: api.KindEstimate,
			Estimate: &api.EstimateSpec{
				Graph:  api.GraphSpec{Family: "hypercube", N: 7},
				P:      0.7,
				Trials: 20,
				Seed:   3,
				Fail:   fail,
			},
		}
		want, err := faultroute.NewLocal().Do(ctx, req)
		if err != nil {
			t.Fatalf("%s local: %v", fail.Model, err)
		}
		got, err := pool.Do(ctx, req)
		if err != nil {
			t.Fatalf("%s pool: %v", fail.Model, err)
		}
		if got.Key != want.Key {
			t.Fatalf("%s: pool key %s != local key %s", fail.Model, got.Key, want.Key)
		}
		if !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("%s: sharded bytes differ from local:\n got %s\nwant %s",
				fail.Model, got.Body, want.Body)
		}
	}
}

func TestPoolShardedKleinbergEstimateByteIdenticalToLocal(t *testing.T) {
	b1, b2 := newBackend(t, nil), newBackend(t, nil)
	pool := newPool(t, []string{b1.srv.URL, b2.srv.URL}, dispatch.WithShardTrials(4))
	ctx := context.Background()

	req := api.Request{
		Kind: api.KindEstimate,
		Estimate: &api.EstimateSpec{
			Graph:  api.GraphSpec{Family: "kleinberg", D: 2, Side: 8, Seed: 3},
			P:      0.85,
			Trials: 16,
			Seed:   6,
		},
	}
	want, err := faultroute.NewLocal().Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != want.Key {
		t.Fatalf("pool key %s != local key %s", got.Key, want.Key)
	}
	if !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("sharded kleinberg bytes differ from local:\n got %s\nwant %s", got.Body, want.Body)
	}
}
