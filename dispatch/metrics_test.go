package dispatch_test

// The pool's dispatch counters live in the process-wide metrics
// registry, which every serve scrape appends — so a program embedding
// both a Pool and a Service (or, as here, in-process test backends)
// exposes failover counts on GET /v1/metrics without extra wiring.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"faultroute"
	"faultroute/dispatch"
)

// scrapeCounter fetches base's /v1/metrics and returns the value of the
// unlabeled series name.
func scrapeCounter(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s has unparsable value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("scrape of %s has no series %q", base, name)
	return 0
}

func TestPoolFailoverCountersOnMetricsEndpoint(t *testing.T) {
	healthy := newBackend(t, nil)
	dying := newBackend(t, failAfter(3))

	// The counters are cumulative across the process (other tests may
	// have dispatched too), so assert deltas around this run.
	subBefore := scrapeCounter(t, healthy.srv.URL, "faultroute_dispatch_subjobs_total")
	failBefore := scrapeCounter(t, healthy.srv.URL, "faultroute_dispatch_failovers_total")
	downBefore := scrapeCounter(t, healthy.srv.URL, "faultroute_dispatch_backends_down_total")

	pool := newPool(t, []string{dying.srv.URL, healthy.srv.URL}, dispatch.WithShardTrials(4))
	ctx := context.Background()
	req := estimateReq(40)
	want, err := faultroute.NewLocal().Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("post-failover bytes differ from local")
	}

	// 40 trials in shards of 4 is ten sub-jobs minimum; the dying
	// backend forces at least one re-dispatch and one down-marking.
	if delta := scrapeCounter(t, healthy.srv.URL, "faultroute_dispatch_subjobs_total") - subBefore; delta < 10 {
		t.Errorf("dispatch recorded %v sub-jobs, want >= 10", delta)
	}
	if delta := scrapeCounter(t, healthy.srv.URL, "faultroute_dispatch_failovers_total") - failBefore; delta < 1 {
		t.Errorf("dispatch recorded %v failovers, want >= 1", delta)
	}
	if delta := scrapeCounter(t, healthy.srv.URL, "faultroute_dispatch_backends_down_total") - downBefore; delta < 1 {
		t.Errorf("dispatch recorded %v backend down-markings, want >= 1", delta)
	}
}
