package dispatch_test

// Peer cache fill tests: a pool facing backends that already hold a
// request's shard results must answer from their caches — one GET per
// shard, zero job submissions — and still return bytes identical to
// faultroute.Local.

import (
	"bytes"
	"context"
	"net/http"
	"sync/atomic"
	"testing"

	"faultroute"
	"faultroute/api"
	"faultroute/dispatch"
)

// countSubmits wraps a backend handler, counting POST /v1/jobs calls.
func countSubmits(n *atomic.Int64) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
				n.Add(1)
			}
			next.ServeHTTP(w, r)
		})
	}
}

func TestPoolPeerFillSkipsWarmShards(t *testing.T) {
	var subsA, subsB atomic.Int64
	warm := newBackend(t, countSubmits(&subsA))
	cold := newBackend(t, countSubmits(&subsB))
	ctx := context.Background()
	req := estimateReq(30)

	want, err := faultroute.NewLocal().Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// Warm the first backend through a single-backend pool with the same
	// fixed shard size: afterward it holds every shard's result. (A
	// single-backend pool never peer-probes — there is no peer.)
	warmPool := newPool(t, []string{warm.srv.URL}, dispatch.WithShardTrials(4))
	if _, err := warmPool.Do(ctx, req); err != nil {
		t.Fatal(err)
	}
	warmed := subsA.Load()
	if warmed == 0 {
		t.Fatal("warm-up run submitted no jobs")
	}

	probesBefore := scrapeCounter(t, warm.srv.URL, "faultroute_dispatch_peer_probes_total")
	fillsBefore := scrapeCounter(t, warm.srv.URL, "faultroute_dispatch_peer_fills_total")

	// A fresh two-backend pool, same shard layout: every shard's result
	// already sits in the warm backend's cache, so peer fill must answer
	// the whole request without submitting a single job anywhere.
	pool := newPool(t, []string{cold.srv.URL, warm.srv.URL}, dispatch.WithShardTrials(4))
	var last api.Event
	got, err := pool.Watch(ctx, req, func(ev api.Event) { last = ev })
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != want.Key || !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("peer-filled result differs from local:\n got %s %s\nwant %s %s",
			got.Key, got.Body, want.Key, want.Body)
	}
	if subsA.Load() != warmed || subsB.Load() != 0 {
		t.Fatalf("peer-filled run submitted jobs: warm backend %d (want %d), cold backend %d (want 0)",
			subsA.Load(), warmed, subsB.Load())
	}
	if last.State != api.JobDone || last.Done != int64(req.Estimate.Trials) {
		t.Fatalf("final event %+v, want done with %d trials", last, req.Estimate.Trials)
	}

	// 30 trials in shards of 4 is eight sub-jobs: eight fills, and at
	// least one probe each (both backends are probed concurrently).
	if delta := scrapeCounter(t, warm.srv.URL, "faultroute_dispatch_peer_fills_total") - fillsBefore; delta != 8 {
		t.Errorf("peer fills delta = %v, want 8", delta)
	}
	if delta := scrapeCounter(t, warm.srv.URL, "faultroute_dispatch_peer_probes_total") - probesBefore; delta < 8 {
		t.Errorf("peer probes delta = %v, want >= 8", delta)
	}
}

func TestPoolPeerFillDisabled(t *testing.T) {
	var subs atomic.Int64
	warm := newBackend(t, nil)
	counted := newBackend(t, countSubmits(&subs))
	ctx := context.Background()
	req := estimateReq(20)

	warmPool := newPool(t, []string{warm.srv.URL}, dispatch.WithShardTrials(4))
	want, err := warmPool.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	probesBefore := scrapeCounter(t, warm.srv.URL, "faultroute_dispatch_peer_probes_total")
	pool := newPool(t, []string{warm.srv.URL, counted.srv.URL},
		dispatch.WithShardTrials(4), dispatch.WithPeerFill(false))
	got, err := pool.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, want.Body) {
		t.Fatal("bytes differ with peer fill disabled")
	}
	// No probes happened, and the shards round-robined across both
	// backends as plain submissions (the warm backend answers its share
	// from cache via the normal submit path, not via peer fill).
	if delta := scrapeCounter(t, warm.srv.URL, "faultroute_dispatch_peer_probes_total") - probesBefore; delta != 0 {
		t.Errorf("peer probes delta = %v with peer fill disabled, want 0", delta)
	}
	if subs.Load() == 0 {
		t.Error("cold backend received no submissions with peer fill disabled")
	}
}
