package dispatch_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"faultroute"
	"faultroute/api"
	"faultroute/client"
	"faultroute/dispatch"
	"faultroute/serve"
)

// testBackend is one in-process faultrouted service on a loopback port.
type testBackend struct {
	svc *serve.Service
	srv *httptest.Server
}

func (b *testBackend) close() {
	b.srv.Close()
	b.svc.Close()
}

// newBackend boots a backend, optionally wrapping its handler.
func newBackend(t *testing.T, wrap func(http.Handler) http.Handler) *testBackend {
	t.Helper()
	svc := serve.New(serve.Options{Executors: 2, Workers: 2})
	h := http.Handler(svc.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	b := &testBackend{svc: svc, srv: httptest.NewServer(h)}
	t.Cleanup(b.close)
	return b
}

// fastOpts keeps test dispatches snappy: tight polling, minimal backoff.
func fastOpts(extra ...dispatch.Option) []dispatch.Option {
	return append([]dispatch.Option{
		dispatch.WithClientOptions(
			client.WithPollInterval(2*time.Millisecond),
			client.WithRetry(1, time.Millisecond),
		),
		dispatch.WithCooldown(time.Minute),
	}, extra...)
}

func newPool(t *testing.T, urls []string, opts ...dispatch.Option) *dispatch.Pool {
	t.Helper()
	p, err := dispatch.New(urls, fastOpts(opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// estimateReq is the shared estimate workload of the identity tests.
func estimateReq(trials int) api.Request {
	return api.Request{
		Kind: api.KindEstimate,
		Estimate: &api.EstimateSpec{
			Graph:  api.GraphSpec{Family: "hypercube", N: 7},
			P:      0.6,
			Trials: trials,
			Seed:   3,
		},
	}
}

func TestNewRejectsEmptyBackendList(t *testing.T) {
	if _, err := dispatch.New(nil); err == nil {
		t.Fatal("New accepted an empty backend list")
	}
}

func TestPoolShardedEstimateByteIdenticalToLocal(t *testing.T) {
	b1, b2 := newBackend(t, nil), newBackend(t, nil)
	pool := newPool(t, []string{b1.srv.URL, b2.srv.URL}, dispatch.WithShardTrials(4))
	ctx := context.Background()

	req := estimateReq(30)
	want, err := faultroute.NewLocal().Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != want.Key {
		t.Fatalf("pool key %s != local key %s", got.Key, want.Key)
	}
	if !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("pool bytes differ from local:\n got %s\nwant %s", got.Body, want.Body)
	}
}

func TestPoolExperimentsByteIdenticalToLocal(t *testing.T) {
	// The acceptance pin: E1/E3/E7 through a 2-backend pool are
	// byte-identical to faultroute.Local (and therefore to
	// `routebench -exp <id> -format json`).
	b1, b2 := newBackend(t, nil), newBackend(t, nil)
	pool := newPool(t, []string{b1.srv.URL, b2.srv.URL})
	local := faultroute.NewLocal()
	ctx := context.Background()
	for _, id := range []string{"E1", "E3", "E7"} {
		req := api.Request{
			Kind:       api.KindExperiment,
			Experiment: &api.ExperimentSpec{ID: id, Seed: 1, Scale: "quick"},
		}
		want, err := local.Do(ctx, req)
		if err != nil {
			t.Fatalf("%s local: %v", id, err)
		}
		got, err := pool.Do(ctx, req)
		if err != nil {
			t.Fatalf("%s pool: %v", id, err)
		}
		if !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("%s: pool bytes differ from local:\n got %s\nwant %s", id, got.Body, want.Body)
		}
	}
}

func TestPoolPercolationByteIdenticalToLocal(t *testing.T) {
	b1, b2 := newBackend(t, nil), newBackend(t, nil)
	pool := newPool(t, []string{b1.srv.URL, b2.srv.URL})
	ctx := context.Background()
	req := api.Request{
		Kind: api.KindPercolation,
		Percolation: &api.PercolationSpec{
			Graph:  api.GraphSpec{Family: "mesh", Side: 8},
			Ps:     []float64{0.3, 0.5, 0.7},
			Trials: 4,
		},
	}
	want, err := faultroute.NewLocal().Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("pool bytes differ from local:\n got %s\nwant %s", got.Body, want.Body)
	}
}

// failAfter wraps a handler so that once `limit` requests have been
// served, every later request aborts its connection — the HTTP shape of
// a backend crashing mid-run.
func failAfter(limit int64) func(http.Handler) http.Handler {
	var served atomic.Int64
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if served.Add(1) > limit {
				panic(http.ErrAbortHandler)
			}
			next.ServeHTTP(w, r)
		})
	}
}

func TestPoolFailoverAfterBackendDiesMidRun(t *testing.T) {
	// One backend serves a handful of requests and then drops every
	// connection: shards assigned to it (including ones it had started)
	// must be re-dispatched to the survivor, and the merged result must
	// still be byte-identical to Local.
	healthy := newBackend(t, nil)
	dying := newBackend(t, failAfter(3))
	pool := newPool(t, []string{dying.srv.URL, healthy.srv.URL}, dispatch.WithShardTrials(4))
	ctx := context.Background()

	req := estimateReq(40)
	want, err := faultroute.NewLocal().Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("post-failover bytes differ from local:\n got %s\nwant %s", got.Body, want.Body)
	}
}

func TestPoolFailoverExperimentWholeJob(t *testing.T) {
	// Whole-job dispatches (experiments) fail over too: a backend that
	// dies after accepting the job loses it to the survivor.
	healthy := newBackend(t, nil)
	dying := newBackend(t, failAfter(2))
	// Two attempts: the dying backend first (cursor starts there), then
	// the survivor.
	pool := newPool(t, []string{dying.srv.URL, healthy.srv.URL})
	ctx := context.Background()
	req := api.Request{
		Kind:       api.KindExperiment,
		Experiment: &api.ExperimentSpec{ID: "E1", Seed: 1, Scale: "quick"},
	}
	want, err := faultroute.NewLocal().Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("failover experiment bytes differ from local")
	}
}

func TestPoolFailsWhenEveryBackendIsDown(t *testing.T) {
	dead1 := newBackend(t, failAfter(0))
	dead2 := newBackend(t, failAfter(0))
	pool := newPool(t, []string{dead1.srv.URL, dead2.srv.URL})
	if _, err := pool.Do(context.Background(), estimateReq(8)); err == nil {
		t.Fatal("Do succeeded with every backend down")
	}
}

func TestPoolRejectsInvalidRequestLocally(t *testing.T) {
	// Validation happens in the Pool's own Compile — no backend round
	// trip, so even a fully dead cluster rejects garbage crisply.
	dead := newBackend(t, failAfter(0))
	pool := newPool(t, []string{dead.srv.URL})
	req := estimateReq(8)
	req.Estimate.P = 1.5
	if _, err := pool.Do(context.Background(), req); err == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestPoolWatchAggregatesMonotoneProgress(t *testing.T) {
	b1, b2 := newBackend(t, nil), newBackend(t, nil)
	pool := newPool(t, []string{b1.srv.URL, b2.srv.URL}, dispatch.WithShardTrials(5))
	var (
		mu     sync.Mutex
		events []api.Event
	)
	req := estimateReq(20)
	res, err := pool.Watch(context.Background(), req, func(ev api.Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Body) == 0 {
		t.Fatal("empty result body")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) < 2 {
		t.Fatalf("want leading+trailing events at least, got %d", len(events))
	}
	first, last := events[0], events[len(events)-1]
	if first.State != api.JobRunning || first.Done != 0 {
		t.Fatalf("leading event = %+v, want running/0", first)
	}
	if last.State != api.JobDone || last.Done != 20 || last.Total != 20 {
		t.Fatalf("trailing event = %+v, want done 20/20", last)
	}
	var prev int64 = -1
	for _, ev := range events {
		if ev.Done < prev {
			t.Fatalf("progress went backwards: %d after %d", ev.Done, prev)
		}
		prev = ev.Done
	}
}

func TestPoolDoBatchMatchesIndividualDo(t *testing.T) {
	b1, b2 := newBackend(t, nil), newBackend(t, nil)
	pool := newPool(t, []string{b1.srv.URL, b2.srv.URL}, dispatch.WithShardTrials(3))
	ctx := context.Background()
	reqs := []api.Request{estimateReq(9), estimateReq(12), estimateReq(15)}
	got, err := pool.DoBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	local := faultroute.NewLocal()
	for i, req := range reqs {
		want, err := local.Do(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[i].Body, want.Body) {
			t.Fatalf("batch result %d differs from local", i)
		}
	}
}

func TestPoolHealthReportsPerBackend(t *testing.T) {
	up := newBackend(t, nil)
	down := newBackend(t, failAfter(0))
	pool := newPool(t, []string{up.srv.URL, down.srv.URL})
	hs := pool.Health(context.Background())
	if len(hs) != 2 {
		t.Fatalf("want 2 reports, got %d", len(hs))
	}
	if hs[0].Err != nil || !hs[0].Health.OK {
		t.Fatalf("healthy backend reported unhealthy: %+v", hs[0])
	}
	if hs[1].Err == nil {
		t.Fatal("dead backend reported healthy")
	}
	if got := pool.Backends(); got[0] != up.srv.URL || got[1] != down.srv.URL {
		t.Fatalf("Backends() = %v", got)
	}
}

func TestPoolDeterministicJobFailureIsFinal(t *testing.T) {
	// A spec that fails deterministically (conditioning never succeeds)
	// must NOT burn failover attempts: the error comes back as a job
	// failure, not an exhausted-backends error.
	b := newBackend(t, nil)
	pool := newPool(t, []string{b.srv.URL})
	req := estimateReq(4)
	req.Estimate.P = 0 // no edges survive: {src ~ dst} never holds
	req.Estimate.MaxTries = 1
	_, err := pool.Do(context.Background(), req)
	if err == nil {
		t.Fatal("expected a deterministic failure")
	}
	var jobErr *client.JobError
	if !errors.As(err, &jobErr) {
		t.Fatalf("want a JobError, got %T: %v", err, err)
	}
	if jobErr.Status.State != api.JobFailed {
		t.Fatalf("job state = %s, want failed", jobErr.Status.State)
	}
}
