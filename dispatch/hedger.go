package dispatch

// The hedger layer: speculative re-dispatch of straggler sub-jobs.
// When an attempt outlives its expected duration, the same sub-job is
// launched on an idle, untried backend and the two race; the first
// completed result wins and the loser is canceled on its backend
// (DELETE /v1/jobs/{id}). Hedging is free to verify and free of risk
// by the determinism contract — both attempts are the same pure
// function, so whichever finishes first IS the answer, byte for byte —
// and cheap by content addressing: the duplicate submission coalesces
// with nothing (each attempt runs on a different backend) but its
// cancellation releases the loser's executor mid-trial.

import (
	"context"
	"sync/atomic"
	"time"

	"faultroute/api"
)

// hedger decides when a running attempt is a straggler.
type hedger struct {
	enabled bool
	floor   time.Duration // never hedge earlier than this
	factor  float64       // hedge when elapsed exceeds factor × expected duration
}

// delay returns how long to wait before hedging an attempt whose
// expected duration is `expected` (0 = unknown: wait the floor). The
// floor absorbs queueing jitter; the factor makes the trigger relative,
// so big shards are not hedged for merely being big.
func (h hedger) delay(expected time.Duration) time.Duration {
	d := time.Duration(h.factor * float64(expected))
	if d < h.floor {
		d = h.floor
	}
	return d
}

// requestTrials returns the work size of a sub-job for latency
// accounting: the shard's trial count for shard sub-jobs, the full
// schedule for whole estimates, 0 for kinds whose duration says
// nothing about per-trial speed.
func requestTrials(req api.Request) int {
	if req.Kind != api.KindEstimate || req.Estimate == nil {
		return 0
	}
	if req.Estimate.Shard != nil {
		return req.Estimate.Shard.Count
	}
	return req.Estimate.Trials
}

// expectedDuration predicts how long req should take on m from the
// member's per-trial EWMA (0 when either is unknown).
func expectedDuration(m *member, req api.Request) time.Duration {
	trials := requestTrials(req)
	if trials <= 0 {
		return 0
	}
	return m.trialEWMA() * time.Duration(trials)
}

// attempt is one in-flight execution of a sub-job on one member: its
// cancel handle and, once submitted, the remote job ID the loser is
// canceled by.
type attempt struct {
	m      *member
	cancel context.CancelFunc
	jobID  atomic.Pointer[string]
}

// outcome is what an attempt goroutine reports back.
type outcome struct {
	at      *attempt
	res     api.Result
	err     error
	elapsed time.Duration
}

// runAttempt executes one sub-job on `primary`, hedging onto a second
// backend if the attempt outlives its expected duration. It returns
// the first successful result, or — once every launched attempt has
// failed — the primary's classification-relevant error. Transiently
// failing members are marked down here so the caller's failover loop
// and the selector see one coherent health view. tried is extended
// with every member an attempt actually ran on.
func (p *Pool) runAttempt(ctx context.Context, primary *member, req api.Request, slot int, agg *aggregator, members []*member, tried map[*member]bool) (api.Result, error) {
	ch := make(chan outcome, 2)
	launch := func(m *member) *attempt {
		actx, cancel := context.WithCancel(ctx)
		at := &attempt{m: m, cancel: cancel}
		go p.watchOn(actx, at, req, slot, agg, ch)
		return at
	}
	attempts := []*attempt{launch(primary)}
	defer func() {
		for _, at := range attempts {
			at.cancel()
		}
	}()

	var hedgeCh <-chan time.Time
	if p.hedge.enabled && len(members) > 1 {
		timer := time.NewTimer(p.hedge.delay(expectedDuration(primary, req)))
		defer timer.Stop()
		hedgeCh = timer.C
	}

	var firstErr error
	for outstanding := 1; outstanding > 0; {
		select {
		case <-ctx.Done():
			return api.Result{}, ctx.Err()
		case <-hedgeCh:
			hedgeCh = nil // one hedge per attempt: doubling work, not flooding it
			h := pickHedge(members, tried, primary)
			if h == nil {
				continue
			}
			tried[h] = true
			mHedges.Inc()
			p.stats.hedges.Add(1)
			attempts = append(attempts, launch(h))
			outstanding++
		case out := <-ch:
			outstanding--
			if out.err == nil {
				if out.at.m != primary {
					mHedgeWins.Inc()
					p.stats.hedgeWins.Add(1)
				}
				p.observeSuccess(out.at.m, req, out.elapsed)
				p.cancelLosers(attempts, out.at)
				return out.res, nil
			}
			if ctx.Err() != nil {
				return api.Result{}, ctx.Err()
			}
			if !failoverable(out.err) {
				return api.Result{}, out.err // deterministic: fails identically everywhere
			}
			out.at.m.markDown(p.cooldown)
			if firstErr == nil {
				firstErr = out.err
			}
			// A hedge may still be running; wait it out — it is racing the
			// same pure function and may yet deliver the bytes.
		}
	}
	return api.Result{}, firstErr
}

// watchOn runs one attempt on one member: submit (capturing the job ID
// so a losing attempt can be canceled remotely), then watch to
// completion, feeding progress into the aggregator. The aggregator's
// per-slot max semantics make two concurrent watchers of one slot
// safe: the sum only ever reflects the farthest-along attempt.
func (p *Pool) watchOn(ctx context.Context, at *attempt, req api.Request, slot int, agg *aggregator, ch chan<- outcome) {
	m := at.m
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	mSubJobs.Inc()
	p.stats.subJobs.Add(1)
	start := time.Now()
	sub, err := m.c.Submit(ctx, req)
	if err != nil {
		ch <- outcome{at: at, err: err}
		return
	}
	if id := sub.Job.ID; id != "" {
		at.jobID.Store(&id)
	}
	// Watch resubmits the request: by content address it coalesces onto
	// the job just submitted (or its cached result), so the extra POST is
	// a memoized no-op, not duplicate work.
	res, err := m.c.Watch(ctx, req, func(ev api.Event) {
		agg.observe(slot, ev.Done)
	})
	ch <- outcome{at: at, res: res, err: err, elapsed: time.Since(start)}
}

// cancelLosers cancels every attempt except the winner: the local
// watcher dies with its context, and the remote job is canceled
// best-effort in the background (DELETE /v1/jobs/{id}) so the losing
// backend's executor stops burning trials nobody will read. A loser
// that finished in the meantime answers the DELETE with 409, which is
// not counted — nothing was reclaimed.
func (p *Pool) cancelLosers(attempts []*attempt, winner *attempt) {
	for _, at := range attempts {
		if at == winner {
			continue
		}
		at.cancel()
		id := at.jobID.Load()
		if id == nil {
			continue
		}
		go func(at *attempt, id string) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if _, err := at.m.c.Cancel(ctx, id); err == nil {
				mHedgeCancels.Inc()
				p.stats.hedgeCancels.Add(1)
			}
		}(at, *id)
	}
}

// pickHedge selects the backend for a speculative duplicate: up,
// untried for this sub-job, not the primary, and as idle as possible
// (fewest in-flight attempts — the backend that already finished its
// share is the one with cycles to steal). Returns nil when no such
// backend exists; a hedge onto a busy straggler would just race two
// stragglers.
func pickHedge(members []*member, tried map[*member]bool, primary *member) *member {
	var best *member
	var bestLoad int64
	for _, m := range members {
		if m == primary || tried[m] || !m.up() {
			continue
		}
		if load := m.inflight.Load(); best == nil || load < bestLoad {
			best, bestLoad = m, load
		}
	}
	return best
}

// observeSuccess feeds one successful sub-job back into the adaptive
// layers: the member's per-trial EWMA (selection weight, hedge timing)
// and the planner's fleet-wide estimate (next job's shard size).
func (p *Pool) observeSuccess(m *member, req api.Request, elapsed time.Duration) {
	trials := requestTrials(req)
	if trials <= 0 || elapsed <= 0 {
		return
	}
	m.observe(elapsed / time.Duration(trials))
	p.planner.observe(trials, elapsed)
}
