package dispatch

// White-box tests of the layer policies in isolation: planner sizing
// math, capacity-weighted selection, and cooldown/EWMA recovery.

import (
	"testing"
	"time"

	"faultroute/api"
)

func TestAdaptivePlannerColdStartMatchesHeuristic(t *testing.T) {
	p := &adaptivePlanner{target: time.Second}
	if got, want := p.shardSize(100, 3), heuristicShardSize(100, 3); got != want {
		t.Fatalf("cold shardSize = %d, want heuristic %d", got, want)
	}
}

func TestAdaptivePlannerTracksObservedLatency(t *testing.T) {
	p := &adaptivePlanner{target: time.Second}
	// 10ms per trial observed: the target fits 100 trials per shard, but
	// the upper clamp (two shards per backend) must cap it for a small
	// job first.
	p.observe(10, 100*time.Millisecond)
	if got := p.shardSize(1000, 4); got != 100 {
		t.Fatalf("shardSize(1000 trials, 4 backends) = %d, want 100 (target/perTrial)", got)
	}
	if got, max := p.shardSize(100, 4), (100+7)/8; got != max {
		t.Fatalf("shardSize(100 trials, 4 backends) = %d, want clamp %d (2 shards per backend)", got, max)
	}
	// Very slow trials: the lower clamp (8 shards per backend) keeps the
	// job from shattering into per-trial jobs.
	slow := &adaptivePlanner{target: time.Second}
	slow.observe(1, 10*time.Second)
	if got, min := slow.shardSize(640, 4), 640/32; got != min {
		t.Fatalf("shardSize under slow trials = %d, want clamp %d (8 shards per backend)", got, min)
	}
}

func TestShardRangesCoverTrialsExactly(t *testing.T) {
	pl := fixedPlanner{size: 7}
	ranges := shardRanges(pl, estimateRequest(40), 3)
	var total int
	next := 0
	for _, r := range ranges {
		if r.Offset != next {
			t.Fatalf("range offset %d, want %d (contiguous from 0)", r.Offset, next)
		}
		next = r.Offset + r.Count
		total += r.Count
	}
	if total != 40 {
		t.Fatalf("ranges cover %d trials, want 40", total)
	}
}

func TestWeightedSelectorEqualWeightsRotate(t *testing.T) {
	// With no latency observations every member weighs 1.0 and selection
	// must degenerate to plain rotation — the pre-refactor behavior the
	// failover tests pin (first pick = first member).
	members := []*member{{url: "a"}, {url: "b"}, {url: "c"}}
	s := &weightedSelector{}
	var got []string
	for i := 0; i < 6; i++ {
		got = append(got, s.pick(members, map[*member]bool{}).url)
	}
	want := []string{"a", "b", "c", "a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("equal-weight schedule %v, want %v", got, want)
		}
	}
}

func TestWeightedSelectorFavorsFastMembers(t *testing.T) {
	fast := &member{url: "fast", ewma: time.Millisecond}
	slowM := &member{url: "slow", ewma: 4 * time.Millisecond}
	members := []*member{fast, slowM}
	s := &weightedSelector{}
	counts := map[string]int{}
	for i := 0; i < 100; i++ {
		counts[s.pick(members, map[*member]bool{}).url]++
	}
	// 4:1 latency split → 4:1 selection split (80/20), smooth.
	if counts["fast"] <= 2*counts["slow"] {
		t.Fatalf("fast member picked %d times vs slow %d, want a clear capacity split", counts["fast"], counts["slow"])
	}
	if counts["slow"] == 0 {
		t.Fatal("slow member starved outright — the weight cap must keep it sampled")
	}
}

func TestWeightedSelectorPrefersUntried(t *testing.T) {
	a, b := &member{url: "a"}, &member{url: "b"}
	tried := map[*member]bool{a: true}
	s := &weightedSelector{}
	if got := s.pick([]*member{a, b}, tried); got != b {
		t.Fatalf("pick chose already-tried %q over fresh %q", got.url, b.url)
	}
}

func TestMemberRecoverResetsEWMAToFleetMedian(t *testing.T) {
	m := &member{url: "x"}
	m.observe(time.Millisecond)
	m.markDown(time.Hour)
	// The failure-era estimate is catastrophic; recovery must not keep it.
	m.wasDown = true
	m.ewma = 10 * time.Second

	median := 2 * time.Millisecond
	m.recover(median)
	if !m.up() {
		t.Fatal("recovered member still in cooldown")
	}
	if got := m.trialEWMA(); got != median {
		t.Fatalf("recovered EWMA = %v, want fleet median %v", got, median)
	}
	// A second recover is a no-op: only a down member resets.
	m.observe(5 * time.Millisecond)
	before := m.trialEWMA()
	m.recover(median)
	if got := m.trialEWMA(); got != before {
		t.Fatalf("recover on a healthy member rewrote its EWMA: %v -> %v", before, got)
	}
}

func TestMemberObserveDiscardsPreFailureEWMA(t *testing.T) {
	m := &member{url: "y"}
	m.observe(10 * time.Second) // pathological pre-failure estimate
	m.markDown(time.Millisecond)
	time.Sleep(2 * time.Millisecond) // cooldown lapses on its own
	m.observe(time.Millisecond)
	if got := m.trialEWMA(); got != time.Millisecond {
		t.Fatalf("post-failure EWMA = %v, want a clean restart at 1ms", got)
	}
}

func TestFleetMedianEWMA(t *testing.T) {
	members := []*member{
		{ewma: 3 * time.Millisecond},
		{ewma: time.Millisecond},
		{}, // no observation: excluded
		{ewma: 9 * time.Millisecond},
	}
	if got := fleetMedianEWMA(members); got != 3*time.Millisecond {
		t.Fatalf("fleet median = %v, want 3ms", got)
	}
	if got := fleetMedianEWMA([]*member{{}, {}}); got != 0 {
		t.Fatalf("median of unobserved fleet = %v, want 0", got)
	}
}

func TestHedgerDelayFloorsAndScales(t *testing.T) {
	h := hedger{enabled: true, floor: 400 * time.Millisecond, factor: 2}
	if got := h.delay(0); got != 400*time.Millisecond {
		t.Fatalf("delay with unknown expectation = %v, want the 400ms floor", got)
	}
	if got := h.delay(time.Second); got != 2*time.Second {
		t.Fatalf("delay for a 1s attempt = %v, want 2s (factor)", got)
	}
}

// estimateRequest builds a minimal normalized estimate for planner
// tests (white-box: no wire validation needed).
func estimateRequest(trials int) api.Request {
	return api.Request{Kind: api.KindEstimate, Estimate: &api.EstimateSpec{Trials: trials}}
}
