package dispatch

// The planner layer: how an estimate's trial schedule splits into
// shard sub-jobs. Shard layout never affects result bytes (MergeShards
// folds rows in trial order), so the planner is free to chase pure
// throughput: the adaptive planner feeds observed per-trial completion
// latency back into the shard size between jobs, aiming every shard at
// a fixed wall-time target so re-dispatch and hedging operate on
// pieces small enough to be worth stealing.

import (
	"sync"
	"time"

	"faultroute/api"
)

// planner sizes an estimate's trial shards and absorbs completion
// feedback. Implementations are safe for concurrent use.
type planner interface {
	// shardSize returns the trial count per shard for a job of `trials`
	// trials over `members` backends (>= 1; a size >= trials means
	// "dispatch whole").
	shardSize(trials, members int) int
	// observe feeds one completed sub-job back: `trials` trials finished
	// in `elapsed` wall time on some backend.
	observe(trials int, elapsed time.Duration)
}

// fixedPlanner always returns the configured size — the WithShardTrials
// contract, kept for reproducible layouts (tests, benchmarks, peer
// cache fill across runs).
type fixedPlanner struct{ size int }

func (p fixedPlanner) shardSize(trials, members int) int { return p.size }
func (p fixedPlanner) observe(int, time.Duration)        {}

// heuristicShardSize is the cold-start split: about four shards per
// backend, so a slow backend's share can be overtaken by the others
// without drowning in per-job overhead.
func heuristicShardSize(trials, members int) int {
	return (trials + 4*members - 1) / (4 * members)
}

// adaptivePlanner sizes shards from the fleet-wide per-trial latency
// EWMA so each shard lands near the target wall time. Until the first
// observation it falls back to the cold-start heuristic. Two clamps
// keep the layout sane at the extremes: at least two shards per
// backend (spreading is what makes stragglers overtakable — one giant
// shard per backend cannot be hedged usefully), and at most eight
// shards per backend (per-job overhead must not eat the win on very
// slow trials).
type adaptivePlanner struct {
	target time.Duration // intended per-shard wall time

	mu       sync.Mutex
	perTrial time.Duration // fleet EWMA of per-trial completion latency
}

func (p *adaptivePlanner) shardSize(trials, members int) int {
	p.mu.Lock()
	per := p.perTrial
	p.mu.Unlock()
	if per <= 0 {
		return heuristicShardSize(trials, members)
	}
	size := int(p.target / per)
	if maxSize := (trials + 2*members - 1) / (2 * members); size > maxSize {
		size = maxSize
	}
	if minSize := (trials + 8*members - 1) / (8 * members); size < minSize {
		size = minSize
	}
	if size < 1 {
		size = 1
	}
	return size
}

func (p *adaptivePlanner) observe(trials int, elapsed time.Duration) {
	if trials <= 0 || elapsed <= 0 {
		return
	}
	per := elapsed / time.Duration(trials)
	p.mu.Lock()
	if p.perTrial == 0 {
		p.perTrial = per
	} else {
		p.perTrial += time.Duration(ewmaAlpha * float64(per-p.perTrial))
	}
	p.mu.Unlock()
}

// shardRanges splits the request's trial schedule using the planner,
// returning nil when the request dispatches whole (non-estimates,
// sub-jobs already carrying a shard, and schedules too small to be
// worth splitting).
func shardRanges(pl planner, norm api.Request, members int) []api.ShardSpec {
	if norm.Kind != api.KindEstimate || norm.Estimate == nil || norm.Estimate.Shard != nil {
		return nil
	}
	if members < 1 {
		members = 1
	}
	trials := norm.Estimate.Trials
	size := pl.shardSize(trials, members)
	if size <= 0 {
		size = heuristicShardSize(trials, members)
	}
	if size < 1 {
		size = 1
	}
	if size >= trials {
		return nil
	}
	ranges := make([]api.ShardSpec, 0, (trials+size-1)/size)
	for off := 0; off < trials; off += size {
		n := size
		if off+n > trials {
			n = trials - off
		}
		ranges = append(ranges, api.ShardSpec{Offset: off, Count: n})
	}
	return ranges
}
