package dispatch

// The selector layer: which backend gets the next sub-job. Selection
// is capacity-weighted smooth round-robin — each member accumulates
// credit proportional to its observed speed (the inverse of its
// per-trial latency EWMA) and the highest balance wins, paying the
// total back on selection. With no observations the weights are equal
// and the schedule degenerates to exactly the old rotation; as EWMAs
// arrive, faster backends earn proportionally more shards. The scheme
// is deterministic (no RNG) and interleaves smoothly: a 3:1 weight
// split yields A A B A, never A A A B.

import "sync"

// selector picks the member for the next sub-job attempt. tried marks
// members already attempted for THIS sub-job. Implementations are safe
// for concurrent use and must return non-nil when members is non-empty.
type selector interface {
	pick(members []*member, tried map[*member]bool) *member
}

// weightRatioCap bounds the weight spread between the fastest and
// slowest member. Without it one warm backend with a cache-hit EWMA of
// microseconds would starve a cold sibling forever; with it the slow
// member still gets every (cap+1)-th shard, which is also what keeps
// its EWMA fresh enough to notice a recovery.
const weightRatioCap = 8.0

// weightedSelector is the default selector.
type weightedSelector struct {
	mu sync.Mutex // serializes credit updates across concurrent picks
}

// pick selects by preference tier first — up and untried beats untried
// (a fresh chance beats a backend that failed THIS sub-job) beats up —
// then runs smooth weighted round-robin within the winning tier. A
// fully down, fully tried pool still yields a member: the caller's
// attempt budget is the real bound.
func (s *weightedSelector) pick(members []*member, tried map[*member]bool) *member {
	if len(members) == 0 {
		return nil
	}
	var upFresh, fresh, up []*member
	for _, m := range members {
		switch mUp, mFresh := m.up(), !tried[m]; {
		case mUp && mFresh:
			upFresh = append(upFresh, m)
		case mFresh:
			fresh = append(fresh, m)
		case mUp:
			up = append(up, m)
		}
	}
	for _, tier := range [][]*member{upFresh, fresh, up} {
		if len(tier) > 0 {
			return s.roundRobin(tier)
		}
	}
	return members[0]
}

// roundRobin runs one smooth-weighted-round-robin step over the
// candidates: add each member's weight to its credit, pick the largest
// balance, charge the winner the round's total.
func (s *weightedSelector) roundRobin(cands []*member) *member {
	if len(cands) == 1 {
		return cands[0]
	}
	weights := memberWeights(cands)
	s.mu.Lock()
	defer s.mu.Unlock()
	var (
		total float64
		best  *member
	)
	for i, m := range cands {
		m.credit += weights[i]
		total += weights[i]
		if best == nil || m.credit > best.credit {
			best = m
		}
	}
	best.credit -= total
	return best
}

// memberWeights maps observed speed to selection weight: weight 1 for
// a member at the fleet-median per-trial latency, proportionally more
// for faster members, capped at weightRatioCap in either direction.
// Members without an observation weigh exactly 1 — a joiner is
// presumed median until measured.
func memberWeights(cands []*member) []float64 {
	median := fleetMedianEWMA(cands)
	weights := make([]float64, len(cands))
	for i, m := range cands {
		w := 1.0
		if e := m.trialEWMA(); e > 0 && median > 0 {
			w = float64(median) / float64(e)
			if w > weightRatioCap {
				w = weightRatioCap
			}
			if w < 1/weightRatioCap {
				w = 1 / weightRatioCap
			}
		}
		weights[i] = w
	}
	return weights
}
