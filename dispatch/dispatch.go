// Package dispatch is the distributed implementation of api.Runner: a
// Pool that fans one request out across many faultrouted backends and
// folds the pieces back into the request's canonical result bytes.
//
// It is the fourth entry point of the execution surface — after the
// in-process faultroute.Local, the faultroute/serve HTTP service, and
// the single-backend faultroute/client — and the first that scales a
// single estimate past one machine. The byte-identity guarantee of the
// Runner API survives intact: a Pool over any number of backends, at any
// shard layout, with any pattern of mid-run failures, hedges and
// re-dispatches, returns exactly the bytes faultroute.Local computes
// for the same request.
//
// Internally the Pool is four layers, each behind a small interface so
// policies are swappable and testable in isolation:
//
//   - The planner (planner.go) sizes an estimate's trial shards. By
//     default it is latency-adaptive: completed sub-jobs feed a
//     fleet-wide per-trial EWMA back between jobs, and shards are sized
//     toward a fixed wall-time target (WithShardTarget); WithShardTrials
//     pins a fixed size instead. Shard layout never changes bytes —
//     api.MergeShards folds per-trial rows in trial order.
//   - The selector (selector.go) picks the backend for each sub-job:
//     capacity-weighted smooth round-robin, where a backend's weight is
//     the inverse of its observed per-trial latency. With no
//     observations it degenerates to pure rotation.
//   - The hedger (hedger.go) watches for stragglers: an attempt that
//     outlives its expected duration is speculatively re-dispatched to
//     an idle backend, the first completed result wins, and the loser
//     is canceled remotely (DELETE /v1/jobs/{id}). Determinism makes
//     the race free: both attempts compute identical bytes.
//   - The membership layer (membership.go) owns the live backend set.
//     WithResolver re-resolves it between jobs: joiners are admitted,
//     removed backends drain (they finish or fail over their running
//     attempts and leave selection immediately).
//
// Fan-out per request kind: estimates are sharded into trial-range
// sub-jobs (api.ShardSpec), each a content-addressed job of its own;
// experiments and percolation sweeps dispatch whole to one backend
// each (their results are not trial-addressable over the wire), though
// DoBatch still spreads many such requests across the fleet.
//
// Failure handling leans on the same determinism: every sub-job is a
// pure function of its spec, so when a backend dies mid-shard the Pool
// re-dispatches the shard to a surviving backend and the retried range
// recomputes identical rows. Failing backends cool down; a cooled-down
// backend that recovers (next successful Health probe) re-enters
// selection with its latency estimate reset to the fleet median, so a
// crash's worst-case EWMA cannot down-weight it forever.
//
// The same determinism powers peer cache fill (on by default, see
// WithPeerFill): before dispatching a sub-job the Pool probes the
// surviving backends' GET /v1/results/{key} under a short deadline, and
// any backend that already holds the content-addressed result answers
// the sub-job outright — no job submitted, no trials recomputed.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"faultroute/api"
	"faultroute/client"
	"faultroute/internal/metrics"
)

// Dispatch series, registered once in the process-wide metrics
// registry: a Pool is not an HTTP service, so its series surface on
// whatever /v1/metrics endpoint the process exposes (an embedded
// serve.Service appends metrics.Process() to every scrape). Pools in
// one process share the counters, the same way a process shares its
// runtime metrics; per-pool views come from Pool.Stats.
var (
	mSubJobs = metrics.Process().Counter("faultroute_dispatch_subjobs_total",
		"Sub-job dispatch attempts sent to backends, re-dispatches and hedges included.")
	mFailovers = metrics.Process().Counter("faultroute_dispatch_failovers_total",
		"Sub-jobs re-dispatched to another backend after a transient failure.")
	mBackendsDown = metrics.Process().Counter("faultroute_dispatch_backends_down_total",
		"Backends marked down for a cooldown after a failed probe or sub-job.")
	mPeerProbes = metrics.Process().Counter("faultroute_dispatch_peer_probes_total",
		"Peer result-cache probes (GET /v1/results/{key}) issued before dispatching sub-jobs.")
	mPeerFills = metrics.Process().Counter("faultroute_dispatch_peer_fills_total",
		"Sub-jobs answered from a peer backend's result cache, no work dispatched.")
	mHedges = metrics.Process().Counter("faultroute_dispatch_hedges_total",
		"Speculative duplicate attempts launched against straggling sub-jobs.")
	mHedgeWins = metrics.Process().Counter("faultroute_dispatch_hedge_wins_total",
		"Hedged sub-jobs whose speculative attempt finished first.")
	mHedgeCancels = metrics.Process().Counter("faultroute_dispatch_hedge_cancels_total",
		"Losing attempts of settled hedge races canceled on their backend (DELETE /v1/jobs/{id}).")
	mMembersJoined = metrics.Process().Counter("faultroute_dispatch_members_joined_total",
		"Backends admitted into a pool by membership re-resolution (WithResolver).")
	mMembersLeft = metrics.Process().Counter("faultroute_dispatch_members_left_total",
		"Backends drained out of a pool by membership re-resolution (WithResolver).")
	mBackendEWMA = metrics.Process().GaugeVec("faultroute_dispatch_backend_trial_ewma_us",
		"Observed per-trial sub-job completion latency EWMA by backend, in microseconds — the selector's capacity signal.",
		"backend")
)

// Pool dispatches requests across a set of faultrouted backends.
// Construct with New; a Pool is safe for concurrent use — concurrent
// Do/Watch/DoBatch calls share the in-flight sub-job bound. The
// backend set is fixed unless WithResolver makes membership live.
type Pool struct {
	members *memberSet
	sel     selector
	planner planner
	hedge   hedger
	sem     chan struct{} // bounds in-flight sub-jobs, pool-wide

	attempts    int // 0 = dynamic: current member count + 1
	cooldown    time.Duration
	peerFill    bool
	peerTimeout time.Duration

	stats poolStats
}

// poolStats is the Pool's own view of the process-wide counters.
type poolStats struct {
	subJobs, failovers      atomic.Uint64
	hedges, hedgeWins       atomic.Uint64
	hedgeCancels, peerFills atomic.Uint64
}

// PoolStats is a point-in-time snapshot of one Pool's dispatch
// activity (the process-wide faultroute_dispatch_* series aggregate
// every pool in the process; this is the per-pool split).
type PoolStats struct {
	// SubJobs counts sub-job attempts sent to backends, re-dispatches
	// and hedges included.
	SubJobs uint64
	// Failovers counts sub-jobs re-dispatched after a transient failure.
	Failovers uint64
	// Hedges counts speculative duplicate attempts launched; HedgeWins
	// counts races the speculative attempt won; HedgeCancels counts
	// losing attempts successfully canceled on their backend.
	Hedges, HedgeWins, HedgeCancels uint64
	// PeerFills counts sub-jobs answered from a peer's result cache.
	PeerFills uint64
}

// Stats returns the Pool's cumulative dispatch counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		SubJobs:      p.stats.subJobs.Load(),
		Failovers:    p.stats.failovers.Load(),
		Hedges:       p.stats.hedges.Load(),
		HedgeWins:    p.stats.hedgeWins.Load(),
		HedgeCancels: p.stats.hedgeCancels.Load(),
		PeerFills:    p.stats.peerFills.Load(),
	}
}

// Option configures a Pool.
type Option func(*settings)

type settings struct {
	clientOpts  []client.Option
	resolver    func() []string
	shardTrials int
	shardTarget time.Duration
	maxInFlight int
	attempts    int
	cooldown    time.Duration
	peerFill    bool
	hedging     bool
	hedgeAfter  time.Duration
	peerTimeout time.Duration
}

// WithClientOptions forwards options (poll interval, retry policy, HTTP
// client) to every per-backend client the Pool constructs.
func WithClientOptions(opts ...client.Option) Option {
	return func(s *settings) { s.clientOpts = append(s.clientOpts, opts...) }
}

// WithResolver makes membership live: resolve is consulted between
// jobs (at the start of every Do/Watch/DoBatch request) and the pool's
// backend set follows it. Newly resolved URLs join with a fresh health
// state; URLs that disappear drain — they take no new sub-jobs, and
// attempts already running against them finish or fail over on their
// own. Kept backends retain their health marks and latency estimates.
// A resolver returning an empty list is ignored (indistinguishable
// from an outage of the resolver itself). When New is called with an
// empty target list, the resolver provides the initial set.
func WithResolver(resolve func() []string) Option {
	return func(s *settings) { s.resolver = resolve }
}

// WithShardTrials pins how many trials each estimate sub-job carries,
// disabling adaptive sizing (<= 0 restores the default: adaptive
// shard sizing, see WithShardTarget). The shard layout never affects
// result bytes — only how the work spreads.
func WithShardTrials(n int) Option { return func(s *settings) { s.shardTrials = n } }

// WithShardTarget sets the wall time the adaptive planner aims each
// shard at (<= 0 restores the default of 1s). Completed sub-jobs feed
// a fleet-wide per-trial latency EWMA back into the planner between
// jobs; shard size is target/EWMA, clamped between two and eight
// shards per backend. Before the first observation the planner splits
// about four shards per backend. Ignored when WithShardTrials pins a
// fixed size.
func WithShardTarget(d time.Duration) Option { return func(s *settings) { s.shardTarget = d } }

// WithMaxInFlight bounds how many sub-jobs the Pool keeps outstanding
// across all concurrent calls (<= 0 restores the default of four per
// initially configured backend). The bound is what keeps a huge
// estimate from flooding every backend's submission queue at once.
func WithMaxInFlight(n int) Option { return func(s *settings) { s.maxInFlight = n } }

// WithAttempts sets how many backends a failing sub-job is tried on
// before the request fails (<= 0 restores the default: the current
// member count plus one, so a single dead backend can never fail a
// request). Only transient failures — network errors, 5xx responses,
// remote cancellation — consume attempts; a deterministic job failure
// is final immediately, because it would fail identically everywhere.
func WithAttempts(n int) Option { return func(s *settings) { s.attempts = n } }

// WithCooldown sets how long a backend that failed a sub-job is skipped
// by selection (default 15s; it is still used as a last resort when
// every backend is marked down). A successful Health probe ends the
// cooldown early and resets the backend's latency estimate to the
// fleet median.
func WithCooldown(d time.Duration) Option { return func(s *settings) { s.cooldown = d } }

// WithHedging enables or disables straggler speculation (default on,
// in pools with at least two backends): an attempt that outlives its
// expected duration — the backend's per-trial latency EWMA times the
// sub-job's trial count, floored by WithHedgeAfter — is duplicated
// onto the idlest untried backend. The first completed result wins and
// the loser is canceled remotely (DELETE /v1/jobs/{id}). By the
// determinism contract both attempts compute identical bytes, so
// hedging changes tail latency, never output.
func WithHedging(enabled bool) Option { return func(s *settings) { s.hedging = enabled } }

// WithHedgeAfter sets the minimum time an attempt runs before it may
// be hedged (<= 0 restores the default of 400ms). With no latency
// observations yet this floor IS the hedge delay; once EWMAs exist the
// delay is the larger of the floor and twice the attempt's expected
// duration.
func WithHedgeAfter(d time.Duration) Option { return func(s *settings) { s.hedgeAfter = d } }

// WithPeerFill enables or disables peer cache fill (default on, in
// pools with at least two backends): before dispatching a sub-job, the
// Pool probes every surviving backend's GET /v1/results/{key} under a
// short deadline, and any hit IS the sub-job's answer — by the
// determinism contract the stored bytes are exactly what a
// recomputation would produce — so a shard a sibling already holds
// costs one GET instead of a job. Misses fall through to a normal
// dispatch; the probe can therefore change throughput but never bytes.
func WithPeerFill(enabled bool) Option { return func(s *settings) { s.peerFill = enabled } }

// WithPeerProbeTimeout bounds how long a peer-fill probe may take
// before the Pool gives up and dispatches the sub-job normally (<= 0
// restores the default of 250ms). The deadline is what keeps a dead
// peer from stalling fresh work.
func WithPeerProbeTimeout(d time.Duration) Option { return func(s *settings) { s.peerTimeout = d } }

// hedgeFactor scales an attempt's expected duration into its hedge
// trigger: only attempts at least this many times over their estimate
// are treated as stragglers.
const hedgeFactor = 2.0

// ParseBackends splits a comma-separated backend list — the form the
// CLIs' -backends flag takes — into base URLs, trimming whitespace and
// dropping empty entries.
func ParseBackends(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// New returns a Pool over the given faultrouted base URLs, e.g.
// []string{"http://host-a:8080", "http://host-b:8080"}. With
// WithResolver, targets may be empty — the resolver provides the
// initial set (and every later one). New performs no I/O beyond that
// initial resolution; use Health to probe the backends.
func New(targets []string, opts ...Option) (*Pool, error) {
	s := settings{cooldown: 15 * time.Second, peerFill: true, hedging: true}
	for _, opt := range opts {
		opt(&s)
	}
	if len(targets) == 0 && s.resolver != nil {
		targets = s.resolver()
	}
	if len(targets) == 0 {
		return nil, errors.New("dispatch: no backends configured")
	}
	if s.maxInFlight <= 0 {
		s.maxInFlight = 4 * len(targets)
	}
	if s.peerTimeout <= 0 {
		s.peerTimeout = 250 * time.Millisecond
	}
	if s.hedgeAfter <= 0 {
		s.hedgeAfter = 400 * time.Millisecond
	}
	if s.shardTarget <= 0 {
		s.shardTarget = time.Second
	}
	var pl planner = &adaptivePlanner{target: s.shardTarget}
	if s.shardTrials > 0 {
		pl = fixedPlanner{size: s.shardTrials}
	}
	return &Pool{
		members:     newMemberSet(targets, s.resolver, s.clientOpts),
		sel:         &weightedSelector{},
		planner:     pl,
		hedge:       hedger{enabled: s.hedging, floor: s.hedgeAfter, factor: hedgeFactor},
		sem:         make(chan struct{}, s.maxInFlight),
		attempts:    s.attempts,
		cooldown:    s.cooldown,
		peerFill:    s.peerFill,
		peerTimeout: s.peerTimeout,
	}, nil
}

// Compile-time check: a Pool is interchangeable with Local and Client.
var _ api.Runner = (*Pool)(nil)

// Backends returns the pool's current base URLs, in selection order.
// With WithResolver the list reflects the membership as of the last
// refresh (New, or the start of the most recent request).
func (p *Pool) Backends() []string {
	members := p.members.snapshot()
	out := make([]string, len(members))
	for i, m := range members {
		out[i] = m.url
	}
	return out
}

// BackendHealth is one backend's probe result from Health.
type BackendHealth struct {
	// URL is the backend's base URL.
	URL string
	// Err is nil when the backend answered its health endpoint.
	Err error
	// Health is the backend's report, meaningful when Err is nil.
	Health api.Health
}

// Health re-resolves membership, probes every backend's /v1/healthz
// concurrently and returns the reports in selection order. Unreachable
// backends are marked down (entering the selection cooldown); a
// backend that answers after having been down recovers immediately —
// its cooldown ends and its latency estimate resets to the fleet
// median, so a stale worst-case EWMA cannot down-weight a recovered
// machine. A Health call therefore doubles as a way to warm (or
// repair) the Pool's view of the cluster before dispatching.
func (p *Pool) Health(ctx context.Context) []BackendHealth {
	p.members.refresh()
	members := p.members.snapshot()
	median := fleetMedianEWMA(members)
	out := make([]BackendHealth, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			h, err := m.c.Health(ctx)
			out[i] = BackendHealth{URL: m.url, Err: err, Health: h}
			switch {
			case err == nil:
				m.recover(median)
			case ctx.Err() == nil:
				// A probe that died because the CALLER's context expired says
				// nothing about the backend — marking the whole cluster down
				// off a canceled warm-up would poison selection for a cooldown.
				m.markDown(p.cooldown)
			}
		}(i, m)
	}
	wg.Wait()
	return out
}

// Do executes the request across the pool and returns its canonical
// result — byte-identical to faultroute.Local for the same request.
func (p *Pool) Do(ctx context.Context, req api.Request) (api.Result, error) {
	return p.run(ctx, req, nil)
}

// Watch is Do with aggregated progress events: onEvent observes a
// leading running event, monotonically non-decreasing running counters
// summed across every sub-job (re-dispatched or hedged shards never
// move the sum backwards), and a trailing done event. Events may
// arrive from internal goroutines but are delivered sequentially.
func (p *Pool) Watch(ctx context.Context, req api.Request, onEvent func(api.Event)) (api.Result, error) {
	return p.run(ctx, req, onEvent)
}

// DoBatch executes many requests concurrently across the pool, results
// in request order. Each result is byte-identical to Do of the same
// request; the pool-wide in-flight bound keeps a large batch from
// flooding the backends. The first error cancels the rest of the batch.
func (p *Pool) DoBatch(ctx context.Context, reqs []api.Request) ([]api.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]api.Result, len(reqs))
	var (
		fail  sync.Once
		cause error
		wg    sync.WaitGroup
	)
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req api.Request) {
			defer wg.Done()
			res, err := p.run(ctx, req, nil)
			if err != nil {
				// Record the originating failure; sibling requests then die
				// with a bare "context canceled" that must not mask it.
				fail.Do(func() { cause = err; cancel() })
				return
			}
			out[i] = res
		}(i, req)
	}
	wg.Wait()
	if cause != nil {
		return nil, cause
	}
	return out, nil
}

// run compiles the request locally (the Pool validates and normalizes
// with the same codec every backend uses), refreshes membership — the
// between-jobs boundary where backends join and leave — then either
// shards the request or dispatches it whole.
func (p *Pool) run(ctx context.Context, req api.Request, onEvent func(api.Event)) (api.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plan, err := api.Compile(req)
	if err != nil {
		return api.Result{}, err
	}
	p.members.refresh()
	norm := plan.Request
	agg := newAggregator(onEvent, plan.Total)
	agg.start()
	var res api.Result
	if ranges := shardRanges(p.planner, norm, len(p.members.snapshot())); len(ranges) > 1 {
		res, err = p.runSharded(ctx, norm, plan.Key, ranges, agg)
	} else {
		res, err = p.dispatch(ctx, norm, 0, agg)
	}
	if err != nil {
		return api.Result{}, err
	}
	agg.finish()
	return res, nil
}

// runSharded fans the estimate's trial ranges out as concurrent
// sub-jobs and merges the rows back into the parent's canonical bytes.
func (p *Pool) runSharded(ctx context.Context, norm api.Request, key string, ranges []api.ShardSpec, agg *aggregator) (api.Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	shards := make([]api.ShardResult, len(ranges))
	// The first failing shard is the cause; its siblings then die with
	// "context canceled", which must never mask the real error.
	var (
		fail  sync.Once
		cause error
		wg    sync.WaitGroup
	)
	abort := func(err error) {
		fail.Do(func() { cause = err; cancel() })
	}
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, r api.ShardSpec) {
			defer wg.Done()
			spec := *norm.Estimate
			spec.Shard = &r
			sub := api.Request{Kind: api.KindEstimate, Estimate: &spec, Workers: norm.Workers}
			res, err := p.dispatch(ctx, sub, i, agg)
			if err == nil {
				shards[i], err = mustShard(res, r)
			}
			if err != nil {
				abort(err)
			}
		}(i, r)
	}
	wg.Wait()
	if cause != nil {
		return api.Result{}, cause
	}
	body, err := api.MergeShards(shards)
	if err != nil {
		return api.Result{}, err
	}
	return api.Result{Kind: norm.Kind, Key: key, Body: body}, nil
}

// mustShard decodes a sub-job result's per-trial rows and verifies they
// are exactly the range that was requested. MergeShards only checks
// contiguity from trial 0, so without this a short (or shifted) shard
// from a version-skewed backend would merge silently into wrong bytes
// under the parent's content address.
func mustShard(res api.Result, want api.ShardSpec) (api.ShardResult, error) {
	sr, err := res.Shard()
	if err != nil {
		return api.ShardResult{}, fmt.Errorf("dispatch: decoding shard result: %w", err)
	}
	if sr.Offset != want.Offset || len(sr.Rows) != want.Count {
		return api.ShardResult{}, fmt.Errorf(
			"dispatch: backend returned shard [offset %d, %d rows], want [offset %d, %d rows]",
			sr.Offset, len(sr.Rows), want.Offset, want.Count)
	}
	return sr, nil
}

// dispatch runs one sub-job to completion on some backend, hedging
// stragglers and failing over on transient errors. slot identifies the
// sub-job to the progress aggregator. The call holds one in-flight
// token for its whole duration (submit, poll, fetch, retries, hedges —
// a hedge races under its primary's token rather than consuming one).
func (p *Pool) dispatch(ctx context.Context, req api.Request, slot int, agg *aggregator) (api.Result, error) {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return api.Result{}, ctx.Err()
	}
	defer func() { <-p.sem }()

	members := p.members.snapshot()
	if len(members) == 0 {
		return api.Result{}, errors.New("dispatch: no backends resolved")
	}

	// Peer cache fill: a sibling backend may already hold this sub-job's
	// content-addressed result — from an earlier run, an overlapping
	// request, or a previous shard layout that happened to align. One
	// cheap GET then replaces a full submit/poll/fetch round.
	if p.peerFill && len(members) > 1 {
		if res, total, ok := p.probePeers(ctx, members, req); ok {
			agg.observe(slot, total)
			return res, nil
		}
	}

	attempts := p.attempts
	if attempts <= 0 {
		attempts = len(members) + 1
	}
	var lastErr error
	tried := make(map[*member]bool, attempts)
	for attempt := 0; attempt < attempts; attempt++ {
		m := p.sel.pick(members, tried)
		if m == nil {
			break
		}
		tried[m] = true
		if attempt > 0 {
			mFailovers.Inc()
			p.stats.failovers.Add(1)
		}
		res, err := p.runAttempt(ctx, m, req, slot, agg, members, tried)
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return api.Result{}, ctx.Err()
		}
		if !failoverable(err) {
			return api.Result{}, err
		}
		lastErr = err
	}
	return api.Result{}, fmt.Errorf("dispatch: sub-job failed on %d backend(s): %w", len(tried), lastErr)
}

// probePeers asks every surviving backend, concurrently and under the
// pool's probe deadline, whether it already holds the sub-job's result
// (GET /v1/results/{key} of the locally compiled content address). The
// first hit wins; shard results are validated against the requested
// range first, exactly like dispatched ones, so a skewed peer copy
// falls through to a normal dispatch instead of merging wrong bytes.
// Returns the result, the sub-job's total trial count (for the progress
// aggregator), and whether any peer answered.
func (p *Pool) probePeers(ctx context.Context, members []*member, req api.Request) (api.Result, int64, bool) {
	plan, err := api.Compile(req)
	if err != nil {
		return api.Result{}, 0, false // let dispatch surface the compile error
	}
	pctx, cancel := context.WithTimeout(ctx, p.peerTimeout)
	defer cancel()
	ch := make(chan []byte, len(members))
	probed := 0
	for _, m := range members {
		if !m.up() {
			continue // a probe to a down backend would just eat the deadline
		}
		probed++
		mPeerProbes.Inc()
		go func(m *member) {
			body, err := m.c.Result(pctx, plan.Key)
			if err != nil {
				body = nil // misses (404) and dead peers look the same here
			}
			ch <- body
		}(m)
	}
	for i := 0; i < probed; i++ {
		body := <-ch
		if body == nil {
			continue
		}
		res := api.Result{Kind: req.Kind, Key: plan.Key, Body: body}
		if spec := req.Estimate; req.Kind == api.KindEstimate && spec != nil && spec.Shard != nil {
			if _, err := mustShard(res, *spec.Shard); err != nil {
				continue
			}
		}
		mPeerFills.Inc()
		p.stats.peerFills.Add(1)
		return res, plan.Total, true
	}
	return api.Result{}, 0, false
}

// failoverable classifies a sub-job failure: transient failures are
// worth re-dispatching to another backend, deterministic ones would
// fail identically everywhere and are final.
func failoverable(err error) bool {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode >= 500
	}
	var jobErr *client.JobError
	if errors.As(err, &jobErr) {
		// A remotely canceled job (backend shutting down, operator
		// intervention, a hedge race settled by a sibling) recomputes
		// cleanly elsewhere; a failed job ran its deterministic task to an
		// error and would fail again.
		return jobErr.Status.State == api.JobCanceled
	}
	// Network errors, truncated responses, decode failures: transient.
	return true
}

// aggregator serializes progress events across sub-job watchers and
// keeps the summed counter monotone: each slot contributes the maximum
// Done it has ever reported, so a shard restarting on another backend
// (from zero) — or two hedged attempts racing through the same slot —
// never moves the total backwards.
type aggregator struct {
	onEvent func(api.Event)
	total   int64

	mu   sync.Mutex
	done map[int]int64
	sum  int64
}

func newAggregator(onEvent func(api.Event), total int64) *aggregator {
	return &aggregator{onEvent: onEvent, total: total, done: make(map[int]int64)}
}

// start emits the leading running event.
func (a *aggregator) start() {
	if a.onEvent == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onEvent(api.Event{State: api.JobRunning, Done: 0, Total: a.total})
}

// observe folds one sub-job's running counter into the sum.
func (a *aggregator) observe(slot int, done int64) {
	if a.onEvent == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if done <= a.done[slot] {
		return
	}
	a.sum += done - a.done[slot]
	a.done[slot] = done
	a.onEvent(api.Event{State: api.JobRunning, Done: a.sum, Total: a.total})
}

// finish emits the trailing done event.
func (a *aggregator) finish() {
	if a.onEvent == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onEvent(api.Event{State: api.JobDone, Done: a.sum, Total: a.total})
}
