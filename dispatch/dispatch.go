// Package dispatch is the distributed implementation of api.Runner: a
// Pool that fans one request out across many faultrouted backends and
// folds the pieces back into the request's canonical result bytes.
//
// It is the fourth entry point of the execution surface — after the
// in-process faultroute.Local, the faultroute/serve HTTP service, and
// the single-backend faultroute/client — and the first that scales a
// single estimate past one machine. The byte-identity guarantee of the
// Runner API survives intact: a Pool over any number of backends, at any
// shard layout, with any pattern of mid-run failures and re-dispatches,
// returns exactly the bytes faultroute.Local computes for the same
// request.
//
// How the fan-out works, per request kind:
//
//   - Estimates are sharded: the [0, Trials) schedule splits into
//     trial-range sub-jobs (api.ShardSpec), each dispatched to a backend
//     as its own content-addressed job whose result is the range's
//     per-trial rows. The Pool merges the rows in trial order
//     (api.MergeShards, the core.MergeTrials semantics), which is why
//     the shard layout can never change a byte of the output.
//   - Experiments and percolation sweeps are dispatched whole to one
//     backend each: their results are not trial-addressable over the
//     wire. Concurrency across MANY such requests still fans out —
//     DoBatch (and any concurrent Do calls) spread requests over the
//     backend set.
//
// Failure handling leans on the same determinism: every sub-job is a
// pure function of its spec, so when a backend dies mid-shard the Pool
// simply re-dispatches the shard to a surviving backend — the retried
// range recomputes the identical rows. Backends that fail are skipped
// for a cooldown period; selection is round-robin over the healthy set.
//
// The same determinism powers peer cache fill (on by default, see
// WithPeerFill): before dispatching a sub-job the Pool probes the
// surviving backends' GET /v1/results/{key} under a short deadline, and
// any backend that already holds the content-addressed result answers
// the sub-job outright — no job submitted, no trials recomputed.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"faultroute/api"
	"faultroute/client"
	"faultroute/internal/metrics"
)

// Dispatch counters, registered once in the process-wide metrics
// registry: a Pool is not an HTTP service, so its series surface on
// whatever /v1/metrics endpoint the process exposes (an embedded
// serve.Service appends metrics.Process() to every scrape). Pools in
// one process share the counters, the same way a process shares its
// runtime metrics.
var (
	mSubJobs = metrics.Process().Counter("faultroute_dispatch_subjobs_total",
		"Sub-job dispatch attempts sent to backends, re-dispatches included.")
	mFailovers = metrics.Process().Counter("faultroute_dispatch_failovers_total",
		"Sub-jobs re-dispatched to another backend after a transient failure.")
	mBackendsDown = metrics.Process().Counter("faultroute_dispatch_backends_down_total",
		"Backends marked down for a cooldown after a failed probe or sub-job.")
	mPeerProbes = metrics.Process().Counter("faultroute_dispatch_peer_probes_total",
		"Peer result-cache probes (GET /v1/results/{key}) issued before dispatching sub-jobs.")
	mPeerFills = metrics.Process().Counter("faultroute_dispatch_peer_fills_total",
		"Sub-jobs answered from a peer backend's result cache, no work dispatched.")
)

// Pool dispatches requests across a fixed set of faultrouted backends.
// Construct with New; a Pool is immutable after construction and safe
// for concurrent use — concurrent Do/Watch/DoBatch calls share the
// in-flight sub-job bound.
type Pool struct {
	backends []*backend
	rr       atomic.Uint64 // round-robin cursor
	sem      chan struct{} // bounds in-flight sub-jobs, pool-wide

	shardTrials int
	attempts    int
	cooldown    time.Duration
	peerFill    bool
	peerTimeout time.Duration
}

// backend is one faultrouted base URL plus its health mark.
type backend struct {
	url string
	c   *client.Client

	mu        sync.Mutex
	downUntil time.Time
}

// markDown records a dispatch failure: the backend is skipped by
// selection until the cooldown passes (it stays eligible as a last
// resort when every backend is down).
func (b *backend) markDown(cooldown time.Duration) {
	b.mu.Lock()
	b.downUntil = time.Now().Add(cooldown)
	b.mu.Unlock()
	mBackendsDown.Inc()
}

// up reports whether the backend is currently eligible for selection.
func (b *backend) up() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Now().After(b.downUntil)
}

// Option configures a Pool.
type Option func(*settings)

type settings struct {
	clientOpts  []client.Option
	shardTrials int
	maxInFlight int
	attempts    int
	cooldown    time.Duration
	peerFill    bool
	peerTimeout time.Duration
}

// WithClientOptions forwards options (poll interval, retry policy, HTTP
// client) to every per-backend client the Pool constructs.
func WithClientOptions(opts ...client.Option) Option {
	return func(s *settings) { s.clientOpts = append(s.clientOpts, opts...) }
}

// WithShardTrials sets how many trials each estimate sub-job carries
// (<= 0 restores the default: the trial range splits into about four
// shards per backend, so a straggling backend can be overtaken). The
// shard layout never affects result bytes — only how the work spreads.
func WithShardTrials(n int) Option { return func(s *settings) { s.shardTrials = n } }

// WithMaxInFlight bounds how many sub-jobs the Pool keeps outstanding
// across all concurrent calls (<= 0 restores the default of four per
// backend). The bound is what keeps a huge estimate from flooding every
// backend's submission queue at once.
func WithMaxInFlight(n int) Option { return func(s *settings) { s.maxInFlight = n } }

// WithAttempts sets how many backends a failing sub-job is tried on
// before the request fails (<= 0 restores the default: the number of
// backends plus one, so a single dead backend can never fail a
// request). Only transient failures — network errors, 5xx responses,
// remote cancellation — consume attempts; a deterministic job failure
// is final immediately, because it would fail identically everywhere.
func WithAttempts(n int) Option { return func(s *settings) { s.attempts = n } }

// WithCooldown sets how long a backend that failed a sub-job is skipped
// by selection (default 15s; it is still used as a last resort when
// every backend is marked down).
func WithCooldown(d time.Duration) Option { return func(s *settings) { s.cooldown = d } }

// WithPeerFill enables or disables peer cache fill (default on, in
// pools with at least two backends): before dispatching a sub-job, the
// Pool probes every surviving backend's GET /v1/results/{key} under a
// short deadline, and any hit IS the sub-job's answer — by the
// determinism contract the stored bytes are exactly what a
// recomputation would produce — so a shard a sibling already holds
// costs one GET instead of a job. Misses fall through to a normal
// dispatch; the probe can therefore change throughput but never bytes.
func WithPeerFill(enabled bool) Option { return func(s *settings) { s.peerFill = enabled } }

// WithPeerProbeTimeout bounds how long a peer-fill probe may take
// before the Pool gives up and dispatches the sub-job normally (<= 0
// restores the default of 250ms). The deadline is what keeps a dead
// peer from stalling fresh work.
func WithPeerProbeTimeout(d time.Duration) Option { return func(s *settings) { s.peerTimeout = d } }

// ParseBackends splits a comma-separated backend list — the form the
// CLIs' -backends flag takes — into base URLs, trimming whitespace and
// dropping empty entries.
func ParseBackends(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// New returns a Pool over the given faultrouted base URLs, e.g.
// []string{"http://host-a:8080", "http://host-b:8080"}. New performs no
// I/O; use Health to probe the backends.
func New(targets []string, opts ...Option) (*Pool, error) {
	if len(targets) == 0 {
		return nil, errors.New("dispatch: no backends configured")
	}
	s := settings{cooldown: 15 * time.Second, peerFill: true}
	for _, opt := range opts {
		opt(&s)
	}
	if s.maxInFlight <= 0 {
		s.maxInFlight = 4 * len(targets)
	}
	if s.attempts <= 0 {
		s.attempts = len(targets) + 1
	}
	if s.peerTimeout <= 0 {
		s.peerTimeout = 250 * time.Millisecond
	}
	p := &Pool{
		backends:    make([]*backend, len(targets)),
		sem:         make(chan struct{}, s.maxInFlight),
		shardTrials: s.shardTrials,
		attempts:    s.attempts,
		cooldown:    s.cooldown,
		peerFill:    s.peerFill && len(targets) > 1,
		peerTimeout: s.peerTimeout,
	}
	for i, url := range targets {
		p.backends[i] = &backend{url: url, c: client.New(url, s.clientOpts...)}
	}
	return p, nil
}

// Compile-time check: a Pool is interchangeable with Local and Client.
var _ api.Runner = (*Pool)(nil)

// Backends returns the configured base URLs, in selection order.
func (p *Pool) Backends() []string {
	out := make([]string, len(p.backends))
	for i, b := range p.backends {
		out[i] = b.url
	}
	return out
}

// BackendHealth is one backend's probe result from Health.
type BackendHealth struct {
	// URL is the backend's base URL.
	URL string
	// Err is nil when the backend answered its health endpoint.
	Err error
	// Health is the backend's report, meaningful when Err is nil.
	Health api.Health
}

// Health probes every backend's /v1/healthz concurrently and returns
// the reports in configuration order. Unreachable backends are marked
// down (entering the selection cooldown), so a Health call doubles as a
// way to warm the Pool's view of the cluster before dispatching.
func (p *Pool) Health(ctx context.Context) []BackendHealth {
	out := make([]BackendHealth, len(p.backends))
	var wg sync.WaitGroup
	for i, b := range p.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			h, err := b.c.Health(ctx)
			out[i] = BackendHealth{URL: b.url, Err: err, Health: h}
			// A probe that died because the CALLER's context expired says
			// nothing about the backend — marking the whole cluster down
			// off a canceled warm-up would poison selection for a cooldown.
			if err != nil && ctx.Err() == nil {
				b.markDown(p.cooldown)
			}
		}(i, b)
	}
	wg.Wait()
	return out
}

// Do executes the request across the pool and returns its canonical
// result — byte-identical to faultroute.Local for the same request.
func (p *Pool) Do(ctx context.Context, req api.Request) (api.Result, error) {
	return p.run(ctx, req, nil)
}

// Watch is Do with aggregated progress events: onEvent observes a
// leading running event, monotonically non-decreasing running counters
// summed across every sub-job (re-dispatched shards never move the sum
// backwards), and a trailing done event. Events may arrive from
// internal goroutines but are delivered sequentially.
func (p *Pool) Watch(ctx context.Context, req api.Request, onEvent func(api.Event)) (api.Result, error) {
	return p.run(ctx, req, onEvent)
}

// DoBatch executes many requests concurrently across the pool, results
// in request order. Each result is byte-identical to Do of the same
// request; the pool-wide in-flight bound keeps a large batch from
// flooding the backends. The first error cancels the rest of the batch.
func (p *Pool) DoBatch(ctx context.Context, reqs []api.Request) ([]api.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]api.Result, len(reqs))
	var (
		fail  sync.Once
		cause error
		wg    sync.WaitGroup
	)
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req api.Request) {
			defer wg.Done()
			res, err := p.run(ctx, req, nil)
			if err != nil {
				// Record the originating failure; sibling requests then die
				// with a bare "context canceled" that must not mask it.
				fail.Do(func() { cause = err; cancel() })
				return
			}
			out[i] = res
		}(i, req)
	}
	wg.Wait()
	if cause != nil {
		return nil, cause
	}
	return out, nil
}

// run compiles the request locally (the Pool validates and normalizes
// with the same codec every backend uses), then either shards it or
// dispatches it whole.
func (p *Pool) run(ctx context.Context, req api.Request, onEvent func(api.Event)) (api.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	plan, err := api.Compile(req)
	if err != nil {
		return api.Result{}, err
	}
	norm := plan.Request
	agg := newAggregator(onEvent, plan.Total)
	agg.start()
	var res api.Result
	if ranges := p.shardRanges(norm); len(ranges) > 1 {
		res, err = p.runSharded(ctx, norm, plan.Key, ranges, agg)
	} else {
		res, err = p.dispatch(ctx, norm, 0, agg)
	}
	if err != nil {
		return api.Result{}, err
	}
	agg.finish()
	return res, nil
}

// shardRanges returns the trial ranges the request splits into, or nil
// when the request dispatches whole (non-estimates, sub-jobs already
// carrying a shard, and schedules too small to be worth splitting).
func (p *Pool) shardRanges(norm api.Request) []api.ShardSpec {
	if norm.Kind != api.KindEstimate || norm.Estimate == nil || norm.Estimate.Shard != nil {
		return nil
	}
	trials := norm.Estimate.Trials
	size := p.shardTrials
	if size <= 0 {
		// Aim for ~4 shards per backend so a slow backend's share can be
		// overtaken by the others, without drowning in per-job overhead.
		size = (trials + 4*len(p.backends) - 1) / (4 * len(p.backends))
	}
	if size < 1 {
		size = 1
	}
	if size >= trials {
		return nil
	}
	ranges := make([]api.ShardSpec, 0, (trials+size-1)/size)
	for off := 0; off < trials; off += size {
		n := size
		if off+n > trials {
			n = trials - off
		}
		ranges = append(ranges, api.ShardSpec{Offset: off, Count: n})
	}
	return ranges
}

// runSharded fans the estimate's trial ranges out as concurrent
// sub-jobs and merges the rows back into the parent's canonical bytes.
func (p *Pool) runSharded(ctx context.Context, norm api.Request, key string, ranges []api.ShardSpec, agg *aggregator) (api.Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	shards := make([]api.ShardResult, len(ranges))
	// The first failing shard is the cause; its siblings then die with
	// "context canceled", which must never mask the real error.
	var (
		fail  sync.Once
		cause error
		wg    sync.WaitGroup
	)
	abort := func(err error) {
		fail.Do(func() { cause = err; cancel() })
	}
	for i, r := range ranges {
		wg.Add(1)
		go func(i int, r api.ShardSpec) {
			defer wg.Done()
			spec := *norm.Estimate
			spec.Shard = &r
			sub := api.Request{Kind: api.KindEstimate, Estimate: &spec, Workers: norm.Workers}
			res, err := p.dispatch(ctx, sub, i, agg)
			if err == nil {
				shards[i], err = mustShard(res, r)
			}
			if err != nil {
				abort(err)
			}
		}(i, r)
	}
	wg.Wait()
	if cause != nil {
		return api.Result{}, cause
	}
	body, err := api.MergeShards(shards)
	if err != nil {
		return api.Result{}, err
	}
	return api.Result{Kind: norm.Kind, Key: key, Body: body}, nil
}

// mustShard decodes a sub-job result's per-trial rows and verifies they
// are exactly the range that was requested. MergeShards only checks
// contiguity from trial 0, so without this a short (or shifted) shard
// from a version-skewed backend would merge silently into wrong bytes
// under the parent's content address.
func mustShard(res api.Result, want api.ShardSpec) (api.ShardResult, error) {
	sr, err := res.Shard()
	if err != nil {
		return api.ShardResult{}, fmt.Errorf("dispatch: decoding shard result: %w", err)
	}
	if sr.Offset != want.Offset || len(sr.Rows) != want.Count {
		return api.ShardResult{}, fmt.Errorf(
			"dispatch: backend returned shard [offset %d, %d rows], want [offset %d, %d rows]",
			sr.Offset, len(sr.Rows), want.Offset, want.Count)
	}
	return sr, nil
}

// dispatch runs one sub-job to completion on some backend, failing over
// to others on transient errors. slot identifies the sub-job to the
// progress aggregator. The call holds one in-flight token for its whole
// duration (submit, poll, fetch, retries).
func (p *Pool) dispatch(ctx context.Context, req api.Request, slot int, agg *aggregator) (api.Result, error) {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return api.Result{}, ctx.Err()
	}
	defer func() { <-p.sem }()

	// Peer cache fill: a sibling backend may already hold this sub-job's
	// content-addressed result — from an earlier run, an overlapping
	// request, or a previous shard layout that happened to align. One
	// cheap GET then replaces a full submit/poll/fetch round.
	if p.peerFill {
		if res, total, ok := p.probePeers(ctx, req); ok {
			agg.observe(slot, total)
			return res, nil
		}
	}

	var lastErr error
	tried := make(map[*backend]bool, p.attempts)
	for attempt := 0; attempt < p.attempts; attempt++ {
		b := p.pick(tried)
		tried[b] = true
		mSubJobs.Inc()
		if attempt > 0 {
			mFailovers.Inc()
		}
		// Fold every sub-job counter into the aggregate, terminal events
		// included (a fast sub-job may finish between two polls, so its
		// only observed event is the terminal one); the aggregator owns
		// the pool-level running/done state transitions.
		res, err := b.c.Watch(ctx, req, func(ev api.Event) {
			agg.observe(slot, ev.Done)
		})
		if err == nil {
			return res, nil
		}
		if ctx.Err() != nil {
			return api.Result{}, ctx.Err()
		}
		if !failoverable(err) {
			return api.Result{}, err
		}
		b.markDown(p.cooldown)
		lastErr = err
	}
	return api.Result{}, fmt.Errorf("dispatch: sub-job failed on %d backend(s): %w", len(tried), lastErr)
}

// probePeers asks every surviving backend, concurrently and under the
// pool's probe deadline, whether it already holds the sub-job's result
// (GET /v1/results/{key} of the locally compiled content address). The
// first hit wins; shard results are validated against the requested
// range first, exactly like dispatched ones, so a skewed peer copy
// falls through to a normal dispatch instead of merging wrong bytes.
// Returns the result, the sub-job's total trial count (for the progress
// aggregator), and whether any peer answered.
func (p *Pool) probePeers(ctx context.Context, req api.Request) (api.Result, int64, bool) {
	plan, err := api.Compile(req)
	if err != nil {
		return api.Result{}, 0, false // let dispatch surface the compile error
	}
	pctx, cancel := context.WithTimeout(ctx, p.peerTimeout)
	defer cancel()
	ch := make(chan []byte, len(p.backends))
	probed := 0
	for _, b := range p.backends {
		if !b.up() {
			continue // a probe to a down backend would just eat the deadline
		}
		probed++
		mPeerProbes.Inc()
		go func(b *backend) {
			body, err := b.c.Result(pctx, plan.Key)
			if err != nil {
				body = nil // misses (404) and dead peers look the same here
			}
			ch <- body
		}(b)
	}
	for i := 0; i < probed; i++ {
		body := <-ch
		if body == nil {
			continue
		}
		res := api.Result{Kind: req.Kind, Key: plan.Key, Body: body}
		if spec := req.Estimate; req.Kind == api.KindEstimate && spec != nil && spec.Shard != nil {
			if _, err := mustShard(res, *spec.Shard); err != nil {
				continue
			}
		}
		mPeerFills.Inc()
		return res, plan.Total, true
	}
	return api.Result{}, 0, false
}

// pick selects the next backend round-robin, preferring backends that
// are up and untried this sub-job, then untried ones still in cooldown
// (a fresh chance beats a backend that just failed THIS sub-job), then
// up-but-already-tried ones; a fully down, fully tried pool still
// yields a backend (the caller's attempt budget is the real bound).
func (p *Pool) pick(tried map[*backend]bool) *backend {
	start := int(p.rr.Add(1) - 1)
	n := len(p.backends)
	var fallbackUp, fallbackUntried *backend
	for i := 0; i < n; i++ {
		b := p.backends[(start+i)%n]
		up, fresh := b.up(), !tried[b]
		switch {
		case up && fresh:
			return b
		case up && fallbackUp == nil:
			fallbackUp = b
		case fresh && fallbackUntried == nil:
			fallbackUntried = b
		}
	}
	if fallbackUntried != nil {
		return fallbackUntried
	}
	if fallbackUp != nil {
		return fallbackUp
	}
	return p.backends[start%n]
}

// failoverable classifies a sub-job failure: transient failures are
// worth re-dispatching to another backend, deterministic ones would
// fail identically everywhere and are final.
func failoverable(err error) bool {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode >= 500
	}
	var jobErr *client.JobError
	if errors.As(err, &jobErr) {
		// A remotely canceled job (backend shutting down, operator
		// intervention) recomputes cleanly elsewhere; a failed job ran its
		// deterministic task to an error and would fail again.
		return jobErr.Status.State == api.JobCanceled
	}
	// Network errors, truncated responses, decode failures: transient.
	return true
}

// aggregator serializes progress events across sub-job watchers and
// keeps the summed counter monotone: each slot contributes the maximum
// Done it has ever reported, so a shard restarting on another backend
// (from zero) never moves the total backwards.
type aggregator struct {
	onEvent func(api.Event)
	total   int64

	mu   sync.Mutex
	done map[int]int64
	sum  int64
}

func newAggregator(onEvent func(api.Event), total int64) *aggregator {
	return &aggregator{onEvent: onEvent, total: total, done: make(map[int]int64)}
}

// start emits the leading running event.
func (a *aggregator) start() {
	if a.onEvent == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onEvent(api.Event{State: api.JobRunning, Done: 0, Total: a.total})
}

// observe folds one sub-job's running counter into the sum.
func (a *aggregator) observe(slot int, done int64) {
	if a.onEvent == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if done <= a.done[slot] {
		return
	}
	a.sum += done - a.done[slot]
	a.done[slot] = done
	a.onEvent(api.Event{State: api.JobRunning, Done: a.sum, Total: a.total})
}

// finish emits the trailing done event.
func (a *aggregator) finish() {
	if a.onEvent == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onEvent(api.Event{State: api.JobDone, Done: a.sum, Total: a.total})
}
