package dispatch_test

// Tests of the adaptive layers through the public surface: straggler
// hedging (byte identity + counters), live membership (joiners admitted
// and used, leavers drained), and cooldown recovery via Health.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"faultroute"
	"faultroute/dispatch"
	"faultroute/serve"
)

// newSlowBackend boots a backend whose every fresh task sleeps first —
// the deliberate straggler of the hedging tests.
func newSlowBackend(t *testing.T, delay time.Duration) *testBackend {
	t.Helper()
	svc := serve.New(serve.Options{Executors: 2, Workers: 2, TaskDelay: delay})
	b := &testBackend{svc: svc, srv: httptest.NewServer(svc.Handler())}
	t.Cleanup(b.close)
	return b
}

func TestPoolHedgingByteIdenticalToLocal(t *testing.T) {
	// Three backends, one pathologically slow. With a tight hedge floor
	// every shard stuck behind the straggler is speculatively re-run on a
	// fast sibling; whatever mixture of primaries and hedges wins, the
	// merged bytes must equal the in-process run.
	fast1, fast2 := newBackend(t, nil), newBackend(t, nil)
	slow := newSlowBackend(t, 300*time.Millisecond)
	pool := newPool(t, []string{fast1.srv.URL, fast2.srv.URL, slow.srv.URL},
		dispatch.WithShardTrials(4),
		dispatch.WithHedgeAfter(30*time.Millisecond))
	ctx := context.Background()

	req := estimateReq(40)
	want, err := faultroute.NewLocal().Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("hedged pool bytes differ from local:\n got %s\nwant %s", got.Body, want.Body)
	}

	st := pool.Stats()
	if st.Hedges == 0 {
		t.Fatal("no hedges fired against a 300ms-delayed backend with a 30ms hedge floor")
	}
	if st.HedgeWins == 0 {
		t.Fatal("hedges fired but none won against a 300ms straggler")
	}
	// Losing attempts are canceled remotely in the background; with the
	// straggler still asleep when the race settles, at least one DELETE
	// must land. Poll briefly — the cancel goroutines outlive Do.
	deadline := time.Now().Add(2 * time.Second)
	for pool.Stats().HedgeCancels == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no losing attempt was canceled on its backend")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPoolResolverAdmitsJoinerMidSweep(t *testing.T) {
	// The pool starts on one backend; the resolver then grows the set and
	// the next job must both use the joiner and stay byte-identical.
	var joinerSubmits atomic.Int64
	b1 := newBackend(t, nil)
	b2 := newBackend(t, countSubmits(&joinerSubmits))

	var (
		mu   sync.Mutex
		urls = []string{b1.srv.URL}
	)
	resolve := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), urls...)
	}
	pool, err := dispatch.New(nil, fastOpts(
		dispatch.WithResolver(resolve),
		dispatch.WithShardTrials(4),
		dispatch.WithPeerFill(false))...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	req := estimateReq(24)
	want, err := faultroute.NewLocal().Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("single-backend pool bytes differ from local")
	}
	if n := len(pool.Backends()); n != 1 {
		t.Fatalf("pool sees %d backends before the join, want 1", n)
	}

	mu.Lock()
	urls = append(urls, b2.srv.URL)
	mu.Unlock()

	// A different spec: the first job's results are cached fleet-wide and
	// a repeat would be answered without dispatching anything.
	req2 := estimateReq(24)
	req2.Estimate.Seed = 11
	want2, err := faultroute.NewLocal().Do(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := pool.Do(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2.Body, want2.Body) {
		t.Fatalf("post-join pool bytes differ from local")
	}
	if n := len(pool.Backends()); n != 2 {
		t.Fatalf("pool sees %d backends after the join, want 2", n)
	}
	if joinerSubmits.Load() == 0 {
		t.Fatal("joined backend received no sub-jobs in the job after its admission")
	}
}

func TestPoolResolverDrainsRemovedBackend(t *testing.T) {
	var removedSubmits atomic.Int64
	b1 := newBackend(t, nil)
	b2 := newBackend(t, countSubmits(&removedSubmits))

	var (
		mu   sync.Mutex
		urls = []string{b1.srv.URL, b2.srv.URL}
	)
	resolve := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), urls...)
	}
	pool, err := dispatch.New(nil, fastOpts(
		dispatch.WithResolver(resolve),
		dispatch.WithShardTrials(4),
		dispatch.WithPeerFill(false))...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if _, err := pool.Do(ctx, estimateReq(24)); err != nil {
		t.Fatal(err)
	}
	if removedSubmits.Load() == 0 {
		t.Fatal("backend 2 got no sub-jobs while still a member")
	}

	mu.Lock()
	urls = urls[:1]
	mu.Unlock()
	beforeRemoval := removedSubmits.Load()

	req2 := estimateReq(24)
	req2.Estimate.Seed = 17
	want, err := faultroute.NewLocal().Do(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Do(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("post-removal pool bytes differ from local")
	}
	if n := len(pool.Backends()); n != 1 {
		t.Fatalf("pool sees %d backends after the removal, want 1", n)
	}
	if after := removedSubmits.Load(); after != beforeRemoval {
		t.Fatalf("drained backend received %d new sub-jobs after its removal", after-beforeRemoval)
	}
}

func TestPoolHealthRecoversCooldownBackend(t *testing.T) {
	// A backend that failed a sub-job sits in cooldown; a successful
	// Health probe must lift the cooldown immediately instead of letting
	// the mark expire on its own.
	flaky := newHealable() // fails every submission until healed
	var b1Submits atomic.Int64
	b1 := newBackend(t, func(next http.Handler) http.Handler {
		return countSubmits(&b1Submits)(flaky.wrap(next))
	})
	b2 := newBackend(t, nil)
	pool := newPool(t, []string{b1.srv.URL, b2.srv.URL},
		dispatch.WithShardTrials(4),
		dispatch.WithPeerFill(false),
		dispatch.WithCooldown(time.Hour)) // the probe, not the clock, must recover it
	ctx := context.Background()

	if _, err := pool.Do(ctx, estimateReq(24)); err != nil {
		t.Fatal(err) // b2 absorbs every failover
	}

	flaky.heal()
	var recovered bool
	for _, h := range pool.Health(ctx) {
		if h.URL == b1.srv.URL && h.Err == nil {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("healed backend still failing its health probe")
	}

	// The recovered backend must take sub-jobs again within the next job
	// — an hour-long cooldown would have parked it otherwise.
	beforeHeal := b1Submits.Load()
	req := estimateReq(24)
	req.Estimate.Seed = 23
	if _, err := pool.Do(ctx, req); err != nil {
		t.Fatal(err)
	}
	if b1Submits.Load() == beforeHeal {
		t.Fatal("recovered backend received no sub-jobs after a successful health probe")
	}
}

// healable is a failure injector that rejects every POST /v1/jobs until
// healed.
type healable struct {
	healthy atomic.Bool
}

func newHealable() *healable { return &healable{} }

func (h *healable) heal() { h.healthy.Store(true) }

func (h *healable) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !h.healthy.Load() && r.Method == http.MethodPost {
			http.Error(w, `{"error":"injected failure"}`, http.StatusInternalServerError)
			return
		}
		next.ServeHTTP(w, r)
	})
}
