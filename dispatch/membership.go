package dispatch

// The membership layer: which backends the Pool may dispatch to right
// now. A memberSet owns the live member list; with WithResolver it
// re-resolves the backend set between jobs, admitting joiners and
// draining removed backends without restarting the Pool.
//
// Draining is structural rather than stateful: sub-jobs hold *member
// references, so removing a member from the set only removes it from
// FUTURE selection — attempts already running against it finish (or
// fail over) on their own, and the member is garbage once the last one
// returns. There is nothing to flush and no stop-the-world barrier,
// which is exactly what the determinism contract buys: a drained
// backend's unfinished shards recompute identically elsewhere.

import (
	"sync"
	"sync/atomic"
	"time"

	"faultroute/client"
)

// member is one backend in the Pool's current view: its client, its
// health mark, and the observed-capacity state the selector, planner
// and hedger feed on.
type member struct {
	url string
	c   *client.Client

	mu        sync.Mutex
	downUntil time.Time
	wasDown   bool          // down since the last EWMA reset; cleared on recovery
	ewma      time.Duration // per-trial completion latency EWMA (0 = no observation)

	// credit is the member's smooth-weighted-round-robin balance; it is
	// owned by the selector and only touched under the selector's lock.
	credit float64

	// inflight counts sub-job attempts currently running against this
	// backend — the hedger's idleness signal.
	inflight atomic.Int64
}

// markDown records a dispatch failure: the backend is skipped by
// selection until the cooldown passes (it stays eligible as a last
// resort when every backend is down).
func (m *member) markDown(cooldown time.Duration) {
	m.mu.Lock()
	m.downUntil = time.Now().Add(cooldown)
	m.wasDown = true
	m.mu.Unlock()
	mBackendsDown.Inc()
}

// up reports whether the backend is currently eligible for selection.
func (m *member) up() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return time.Now().After(m.downUntil)
}

// trialEWMA returns the member's per-trial latency EWMA (0 when no
// sub-job has completed on it yet).
func (m *member) trialEWMA() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ewma
}

// ewmaAlpha is the smoothing factor of every latency EWMA in the pool:
// heavy enough that one slow shard moves the estimate, light enough
// that one cache hit does not erase a backend's history.
const ewmaAlpha = 0.3

// observe folds one completed sub-job's per-trial latency into the
// member's EWMA. A member that was marked down discards its stale
// estimate first (see recover): the pre-failure worst case must not
// outlive the failure.
func (m *member) observe(perTrial time.Duration) {
	m.mu.Lock()
	switch {
	case m.wasDown || m.ewma == 0:
		m.ewma = perTrial
		m.wasDown = false
	default:
		m.ewma += time.Duration(ewmaAlpha * float64(perTrial-m.ewma))
	}
	ewma := m.ewma
	m.mu.Unlock()
	mBackendEWMA.With(m.url).Set(int64(ewma / time.Microsecond))
}

// recover clears a previously-down member's health mark and resets its
// latency estimate to the fleet median: the stale worst-case EWMA a
// backend earned while failing must not permanently down-weight it
// after it comes back (a recovered machine is presumed ordinary until
// observed otherwise). No-op for members that were never down.
func (m *member) recover(fleetMedian time.Duration) {
	m.mu.Lock()
	if m.wasDown {
		m.downUntil = time.Time{}
		m.wasDown = false
		if fleetMedian > 0 {
			m.ewma = fleetMedian
			mBackendEWMA.With(m.url).Set(int64(fleetMedian / time.Microsecond))
		}
	}
	m.mu.Unlock()
}

// memberSet is the Pool's live backend list. With a resolver it is
// refreshed between jobs; without one it is fixed at construction.
type memberSet struct {
	resolve    func() []string
	clientOpts []client.Option

	mu      sync.Mutex
	members []*member
}

// newMemberSet builds the initial membership from the resolved URLs.
func newMemberSet(urls []string, resolve func() []string, clientOpts []client.Option) *memberSet {
	ms := &memberSet{resolve: resolve, clientOpts: clientOpts}
	ms.members = make([]*member, len(urls))
	for i, url := range urls {
		ms.members[i] = &member{url: url, c: client.New(url, clientOpts...)}
	}
	return ms
}

// snapshot returns the current member list. The slice is fresh but the
// members are shared, so health marks and EWMAs stay live.
func (ms *memberSet) snapshot() []*member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]*member, len(ms.members))
	copy(out, ms.members)
	return out
}

// refresh re-resolves the backend set: members whose URL is still
// resolved are kept (health marks and EWMAs intact), resolved URLs
// without a member are admitted as fresh joiners, and members whose URL
// disappeared are dropped from selection — draining, per the package
// rationale above. A resolver returning an empty list is ignored: an
// empty fleet is indistinguishable from a resolver outage, and keeping
// the last known members beats dispatching into nothing.
func (ms *memberSet) refresh() {
	if ms.resolve == nil {
		return
	}
	urls := ms.resolve()
	if len(urls) == 0 {
		return
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	current := make(map[string]*member, len(ms.members))
	for _, m := range ms.members {
		current[m.url] = m
	}
	next := make([]*member, 0, len(urls))
	seen := make(map[string]bool, len(urls))
	for _, url := range urls {
		if seen[url] {
			continue
		}
		seen[url] = true
		if m, ok := current[url]; ok {
			next = append(next, m)
			continue
		}
		next = append(next, &member{url: url, c: client.New(url, ms.clientOpts...)})
		mMembersJoined.Inc()
	}
	for url := range current {
		if !seen[url] {
			mMembersLeft.Inc()
		}
	}
	ms.members = next
}

// fleetMedianEWMA returns the median per-trial EWMA across members with
// an observation, or 0 when nothing has been observed yet — the reset
// value a recovered backend re-enters the fleet with.
func fleetMedianEWMA(members []*member) time.Duration {
	var known []time.Duration
	for _, m := range members {
		if e := m.trialEWMA(); e > 0 {
			known = append(known, e)
		}
	}
	if len(known) == 0 {
		return 0
	}
	for i := 1; i < len(known); i++ { // insertion sort: the fleet is small
		for j := i; j > 0 && known[j] < known[j-1]; j-- {
			known[j], known[j-1] = known[j-1], known[j]
		}
	}
	return known[len(known)/2]
}
